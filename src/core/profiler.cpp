#include "core/profiler.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/tracer.h"
#include "sim/address_space.h"

namespace dcprof::core {

namespace {
// Index-aligned with StorageClass; used for metric labels.
constexpr const char* kClassNames[kNumStorageClasses] = {
    "nomem", "static", "heap", "stack", "unknown"};

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One access-pattern table update, keyed per patterns.h (heap -> the
/// variable-identifying allocation-path IP, static/stack -> interned
/// name, unknown -> 0). Runs on the owning thread at attribution time,
/// so per-thread recording order matches the deterministic backend
/// exactly.
void record_pattern(ThreadProfile& tp, StorageClass cls, std::uint64_t id,
                    const pmu::Sample& s) {
  tp.patterns.record(static_cast<std::uint8_t>(cls), id, s.eaddr, s.is_store,
                     static_cast<std::uint8_t>(s.source));
}

}  // namespace

Profiler::Telemetry::Telemetry() {
  obs::Registry& reg = obs::Registry::global();
  handled = reg.counter("profiler.samples", {{"outcome", "handled"}});
  dropped = reg.counter("profiler.samples", {{"outcome", "dropped"}});
  for (std::size_t c = 0; c < kNumStorageClasses; ++c) {
    class_samples[c] =
        reg.counter("profiler.class_samples", {{"class", kClassNames[c]}});
    attr_depth[c] =
        reg.histogram("profiler.attr_depth", {{"class", kClassNames[c]}});
  }
  memo_reused = reg.counter("profiler.memo_frames", {{"kind", "reused"}});
  memo_walked = reg.counter("profiler.memo_frames", {{"kind", "walked"}});
  sample_ns = reg.counter("profiler.sample_ns");
  cct_nodes = reg.counter("profiler.cct_nodes");
  cct_bytes = reg.counter("profiler.cct_bytes");
  throttle_events = reg.counter("profiler.throttle_events");
  sample_ns_hist = reg.histogram("profiler.sample_ns_hist");
}

Profiler::Profiler(binfmt::ModuleRegistry& modules, ProfilerConfig cfg,
                   std::int32_t rank)
    : modules_(&modules), cfg_(cfg), rank_(rank),
      tracker_(var_map_, paths_, cfg.tracker) {
  var_map_.set_mru_enabled(cfg_.var_map_mru);
}

ProfilerStats Profiler::stats() const {
  ProfilerStats s;
  s.samples_handled = tm_.handled.value();
  s.samples_dropped = tm_.dropped.value();
  s.nomem_samples =
      tm_.class_samples[static_cast<std::size_t>(StorageClass::kNoMem)]
          .value();
  s.static_samples =
      tm_.class_samples[static_cast<std::size_t>(StorageClass::kStatic)]
          .value();
  s.heap_samples =
      tm_.class_samples[static_cast<std::size_t>(StorageClass::kHeap)]
          .value();
  s.stack_samples =
      tm_.class_samples[static_cast<std::size_t>(StorageClass::kStack)]
          .value();
  s.unknown_samples =
      tm_.class_samples[static_cast<std::size_t>(StorageClass::kUnknown)]
          .value();
  s.memo_frames_reused = tm_.memo_reused.value();
  s.memo_frames_walked = tm_.memo_walked.value();
  // Deferred-ingest tallies not yet folded into the cells (callers read
  // stats at quiescent points, but don't force a fold here: stats() is
  // const and should stay side-effect free).
  for (const auto& ip : ingest_) {
    if (!ip) continue;
    s.samples_handled += ip->handled;
    s.nomem_samples +=
        ip->class_counts[static_cast<std::size_t>(StorageClass::kNoMem)];
    s.static_samples +=
        ip->class_counts[static_cast<std::size_t>(StorageClass::kStatic)];
    s.heap_samples +=
        ip->class_counts[static_cast<std::size_t>(StorageClass::kHeap)];
    s.stack_samples +=
        ip->class_counts[static_cast<std::size_t>(StorageClass::kStack)];
    s.unknown_samples +=
        ip->class_counts[static_cast<std::size_t>(StorageClass::kUnknown)];
  }
  for (const auto& ap : attr_) {
    if (!ap) continue;
    s.memo_frames_reused += ap->memo_reused_tally;
    s.memo_frames_walked += ap->memo_walked_tally;
  }
  s.throttle_events = throttle_events_;
  s.period_scale = throttle_scale_;
  return s;
}

void Profiler::attach_pmu(pmu::PmuSet& pmu) {
  pmu_ = &pmu;
  pmu.set_handler([this](const pmu::Sample& s) { handle_sample(s); });
}

void Profiler::attach_allocator(rt::Allocator& alloc) {
  alloc.set_hooks(rt::AllocHooks{
      [this](rt::ThreadCtx& ctx, sim::Addr base, std::uint64_t size,
             sim::Addr ip) { tracker_.on_alloc(ctx, base, size, ip); },
      [this](rt::ThreadCtx& ctx, sim::Addr base, std::uint64_t size) {
        tracker_.on_free(ctx, base, size);
      }});
}

void Profiler::register_thread(rt::ThreadCtx& ctx) {
  const auto tid = static_cast<std::size_t>(ctx.tid());
  if (threads_.size() <= tid) threads_.resize(tid + 1, nullptr);
  threads_[tid] = &ctx;
  if (deferred_) ensure_ingest(tid);
}

void Profiler::register_team(rt::Team& team) {
  for (int t = 0; t < team.size(); ++t) register_thread(team.thread(t));
}

ThreadProfile& Profiler::profile(sim::ThreadId tid) {
  const auto i = static_cast<std::size_t>(tid);
  if (profiles_.size() <= i) profiles_.resize(i + 1);
  if (!profiles_[i]) {
    profiles_[i] = std::make_unique<ThreadProfile>();
    profiles_[i]->rank = rank_;
    profiles_[i]->tid = tid;
  }
  return *profiles_[i];
}

Profiler::ThreadAttrState& Profiler::attr_state(std::size_t tid) {
  if (attr_.size() <= tid) attr_.resize(tid + 1);
  if (!attr_[tid]) attr_[tid] = std::make_unique<ThreadAttrState>();
  return *attr_[tid];
}

void Profiler::attribute_context(ThreadProfile& tp, StorageClass sc,
                                 ThreadAttrState& as, Cct::NodeId anchor,
                                 std::span<const sim::Addr> stack,
                                 sim::Addr leaf_ip, const MetricVec& m,
                                 bool use_memo) {
  Cct& cct = tp.cct(sc);
  ClassMemo& memo = as.memo[static_cast<std::size_t>(sc)];
  const bool memoize = cfg_.memoized_attribution && use_memo;
  // Resume at the divergence point: the first `valid` frames are
  // unchanged since the memoized walk (watermark-guaranteed), so their
  // find-or-create results are already known.
  std::size_t k = 0;
  if (memoize && memo.anchor_known && memo.anchor == anchor) {
    k = std::min({memo.valid, memo.nodes.size(), stack.size()});
  }
  if (deferred_) {
    // Drains of different threads run concurrently; tally in plain
    // per-thread memory, folded into the cells at quiescent points.
    as.memo_reused_tally += k;
    as.memo_walked_tally += stack.size() - k;
  } else {
    tm_.memo_reused.add(k);
    tm_.memo_walked.add(stack.size() - k);
  }
  if (obs::metrics_enabled()) {
    tm_.attr_depth[static_cast<std::size_t>(sc)].record(stack.size());
  }
  Cct::NodeId cur = k == 0 ? anchor : memo.nodes[k - 1];
  if (memoize) {
    memo.nodes.resize(stack.size());
    for (std::size_t i = k; i < stack.size(); ++i) {
      cur = cct.child(cur, NodeKind::kCallSite, stack[i]);
      memo.nodes[i] = cur;
    }
    memo.anchor = anchor;
    memo.anchor_known = true;
    memo.valid = stack.size();
  } else {
    for (std::size_t i = k; i < stack.size(); ++i) {
      cur = cct.child(cur, NodeKind::kCallSite, stack[i]);
    }
  }
  cct.add_metrics(cct.child(cur, NodeKind::kLeafInstr, leaf_ip), m);
}

void Profiler::handle_sample(const pmu::Sample& sample) {
  const auto tid = static_cast<std::size_t>(sample.tid);
  if (tid >= threads_.size() || threads_[tid] == nullptr) {
    tm_.dropped.inc();  // atomic: safe from any backend's threads
    return;
  }
  if (deferred_) {
    // Concurrent backend: do the order-sensitive classification now
    // (we hold the turn), defer CCT attribution to the owning thread's
    // buffer, drained after the turn token moves on.
    ingest_deferred(sample, *threads_[tid]);
    return;
  }
  OBS_SPAN("profiler.handle_sample");
  rt::ThreadCtx& ctx = *threads_[tid];
  ThreadProfile& tp = profile(sample.tid);
  ThreadAttrState& as = attr_state(tid);
  tm_.handled.inc();
  const bool metrics = obs::metrics_enabled();
  const bool throttling = cfg_.throttle.budget_ns != 0 && pmu_ != nullptr;
  if (!metrics && !throttling) {
    attribute_sample(sample, ctx, tp, as);
    return;
  }
  // Metrics on: time the handler and account CCT growth across every
  // class (anchor nodes included). Throttling needs the same wall-clock
  // reads even with metrics off, so both share one timed path.
  std::size_t nodes0 = 0;
  if (metrics) {
    for (std::size_t c = 0; c < kNumStorageClasses; ++c) {
      nodes0 += tp.cct(static_cast<StorageClass>(c)).size();
    }
  }
  const std::uint64_t t0 = steady_ns();
  attribute_sample(sample, ctx, tp, as);
  const std::uint64_t dt = steady_ns() - t0;
  if (metrics) {
    tm_.sample_ns.add(dt);
    tm_.sample_ns_hist.record(dt);
    std::size_t nodes1 = 0;
    for (std::size_t c = 0; c < kNumStorageClasses; ++c) {
      nodes1 += tp.cct(static_cast<StorageClass>(c)).size();
    }
    if (nodes1 > nodes0) {
      tm_.cct_nodes.add(nodes1 - nodes0);
      tm_.cct_bytes.add((nodes1 - nodes0) * sizeof(Cct::Node));
    }
  }
  if (throttling) {
    throttle_window_ns_ += dt;
    if (++throttle_window_n_ >= cfg_.throttle.window) maybe_throttle();
  }
}

void Profiler::maybe_throttle() {
  const std::uint64_t mean = throttle_window_ns_ / throttle_window_n_;
  throttle_window_ns_ = 0;
  throttle_window_n_ = 0;
  if (mean <= cfg_.throttle.budget_ns) return;
  if (throttle_scale_ >= cfg_.throttle.max_scale) return;
  throttle_scale_ = std::min<std::uint64_t>(throttle_scale_ * 2,
                                            cfg_.throttle.max_scale);
  pmu_->set_period_scale(throttle_scale_);
  ++throttle_events_;
  tm_.throttle_events.inc();
}

void Profiler::attribute_sample(const pmu::Sample& sample, rt::ThreadCtx& ctx,
                                ThreadProfile& tp, ThreadAttrState& as) {
  // One watermark take per sample: every class's trusted prefix shrinks
  // to how far the stack has unwound since the previous sample. A sample
  // taken during an epoch-barrier replay sees a snapshot stack instead —
  // the memo (which describes the live stack) is bypassed untouched.
  const bool use_memo = !ctx.stack_replay_active();
  const std::size_t watermark = ctx.take_stack_watermark();
  if (use_memo) {
    for (auto& memo : as.memo) memo.valid = std::min(memo.valid, watermark);
  }
  const MetricVec m = MetricVec::from_sample(sample);
  // The unwind from the signal context ends at the skidded IP; the paper
  // swaps in the precise IP recorded by the PMU.
  const sim::Addr leaf_ip =
      cfg_.use_precise_ip ? sample.precise_ip : sample.signal_ip;

  if (!sample.is_memory) {
    tm_.class_samples[static_cast<std::size_t>(StorageClass::kNoMem)].inc();
    attribute_context(tp, StorageClass::kNoMem, as, Cct::kRootId,
                      ctx.call_stack(), leaf_ip, m, use_memo);
    return;
  }

  if (const HeapBlock* block = var_map_.find(sample.eaddr)) {
    tm_.class_samples[static_cast<std::size_t>(StorageClass::kHeap)].inc();
    if (cfg_.access_patterns) {
      record_pattern(tp, StorageClass::kHeap, block->pattern_id, sample);
    }
    // Prepend the variable's allocation path (possibly unwound in another
    // thread; AllocPaths are immutable so this copy is lock-free), then
    // the dummy data node, then this sample's own calling context.
    // Consecutive samples into the same variable reuse the dummy node.
    Cct& cct = tp.cct(StorageClass::kHeap);
    Cct::NodeId anchor;
    if (cfg_.memoized_attribution &&
        as.last_heap_path == block->path.get()) {
      anchor = as.heap_anchor;
    } else {
      Cct::NodeId cur = Cct::kRootId;
      for (const sim::Addr frame : block->path->frames) {
        cur = cct.child(cur, NodeKind::kCallSite, frame);
      }
      cur = cct.child(cur, NodeKind::kAllocPoint, block->path->alloc_ip);
      anchor = cct.child(cur, NodeKind::kVarData, 0);
      as.last_heap_path = block->path.get();
      as.heap_anchor = anchor;
    }
    attribute_context(tp, StorageClass::kHeap, as, anchor, ctx.call_stack(),
                      leaf_ip, m, use_memo);
    return;
  }

  if (auto hit = modules_->resolve_static(sample.eaddr)) {
    tm_.class_samples[static_cast<std::size_t>(StorageClass::kStatic)].inc();
    StringId name;
    if (auto it = as.static_names.find(hit->sym->lo);
        it != as.static_names.end()) {
      name = it->second;
    } else {
      name = tp.strings.intern(hit->sym->name);
      as.static_names.emplace(hit->sym->lo, name);
    }
    if (cfg_.access_patterns) {
      record_pattern(tp, StorageClass::kStatic, name, sample);
    }
    Cct& cct = tp.cct(StorageClass::kStatic);
    const Cct::NodeId dummy =
        cct.child(Cct::kRootId, NodeKind::kVarStatic, name);
    attribute_context(tp, StorageClass::kStatic, as, dummy, ctx.call_stack(),
                      leaf_ip, m, use_memo);
    return;
  }

  if (cfg_.attribute_stack && sample.eaddr >= sim::kStackBase) {
    tm_.class_samples[static_cast<std::size_t>(StorageClass::kStack)].inc();
    const std::uint64_t owner = (sample.eaddr - sim::kStackBase) >> 20;
    StringId name;
    if (auto it = as.stack_names.find(owner); it != as.stack_names.end()) {
      name = it->second;
    } else {
      name = tp.strings.intern(
          "stack (thread " + std::to_string(static_cast<long>(owner)) + ")");
      as.stack_names.emplace(owner, name);
    }
    if (cfg_.access_patterns) {
      record_pattern(tp, StorageClass::kStack, name, sample);
    }
    Cct& cct = tp.cct(StorageClass::kStack);
    const Cct::NodeId dummy =
        cct.child(Cct::kRootId, NodeKind::kVarStatic, name);
    attribute_context(tp, StorageClass::kStack, as, dummy, ctx.call_stack(),
                      leaf_ip, m, use_memo);
    return;
  }

  tm_.class_samples[static_cast<std::size_t>(StorageClass::kUnknown)].inc();
  if (cfg_.access_patterns) {
    record_pattern(tp, StorageClass::kUnknown, 0, sample);
  }
  attribute_context(tp, StorageClass::kUnknown, as, Cct::kRootId,
                    ctx.call_stack(), leaf_ip, m, use_memo);
}

void Profiler::enable_deferred_ingest() {
  deferred_ = true;
  for (std::size_t tid = 0; tid < threads_.size(); ++tid) {
    if (threads_[tid] != nullptr) ensure_ingest(tid);
  }
}

void Profiler::ensure_ingest(std::size_t tid) {
  // Pre-size every by-tid vector at registration time so no concurrent
  // ingest or drain path ever resizes them. ThreadProfile /
  // ThreadAttrState objects are still created lazily on the owning
  // thread (profile()/attr_state() find the slots already big enough),
  // preserving the deterministic backend's "only sampled threads emit
  // profiles" behaviour.
  if (ingest_.size() <= tid) ingest_.resize(tid + 1);
  if (profiles_.size() <= tid) profiles_.resize(tid + 1);
  if (attr_.size() <= tid) attr_.resize(tid + 1);
  if (hand_expected_.size() <= tid) hand_expected_.resize(tid + 1, 0);
  if (!ingest_[tid]) {
    ingest_[tid] = std::make_unique<ThreadIngest>(cfg_.ingest);
  }
}

void Profiler::ingest_deferred(const pmu::Sample& sample,
                               rt::ThreadCtx& ctx) {
  const auto tid = static_cast<std::size_t>(sample.tid);
  ThreadIngest& ti = *ingest_[tid];
  ThreadProfile& tp = profile(sample.tid);
  ThreadAttrState& as = attr_state(tid);
  ++ti.handled;

  PendingSample rec;
  rec.sample = sample;
  // A sample taken while the epoch resolver replays a deferred access
  // carries the issue-time stack snapshot; it must not touch the live
  // stack's memo (take_stack_watermark reports 0 without re-arming).
  rec.replayed = ctx.stack_replay_active();
  // Same per-sample watermark take as the synchronous path — samples are
  // in thread order either way, so the values match exactly.
  rec.watermark = ctx.take_stack_watermark();
  // Classify against order-sensitive shared state (heap map, module
  // registry) while the turn still serializes us. Variable names are
  // interned here, in sample order, so each thread's string table is
  // byte-identical to the deterministic backend's. Under the sharded
  // backend classification runs concurrently across sockets, so the heap
  // lookup must not mutate the shared MRU cache.
  if (!sample.is_memory) {
    rec.cls = StorageClass::kNoMem;
  } else if (const HeapBlock* block = concurrent_classify_
                 ? var_map_.find_no_mru(sample.eaddr)
                 : var_map_.find(sample.eaddr)) {
    rec.cls = StorageClass::kHeap;
    rec.heap_path = block->path.get();
  } else if (auto hit = modules_->resolve_static(sample.eaddr)) {
    rec.cls = StorageClass::kStatic;
    if (auto it = as.static_names.find(hit->sym->lo);
        it != as.static_names.end()) {
      rec.var_name = it->second;
    } else {
      rec.var_name = tp.strings.intern(hit->sym->name);
      as.static_names.emplace(hit->sym->lo, rec.var_name);
    }
  } else if (cfg_.attribute_stack && sample.eaddr >= sim::kStackBase) {
    rec.cls = StorageClass::kStack;
    const std::uint64_t owner = (sample.eaddr - sim::kStackBase) >> 20;
    if (auto it = as.stack_names.find(owner); it != as.stack_names.end()) {
      rec.var_name = it->second;
    } else {
      rec.var_name = tp.strings.intern(
          "stack (thread " + std::to_string(static_cast<long>(owner)) + ")");
      as.stack_names.emplace(owner, rec.var_name);
    }
  } else {
    rec.cls = StorageClass::kUnknown;
  }
  ++ti.class_counts[static_cast<std::size_t>(rec.cls)];

  const std::span<const sim::Addr> stack = ctx.call_stack();
  if (ti.pending.size() >= cfg_.ingest.buffer_capacity ||
      ti.stack_arena.size() + stack.size() > ti.arena_limit) {
    // Buffer full mid-turn: flush in place. Still correct, just not
    // overlapped with other threads' turns (the normal flush point is
    // on_slice_retired, after the token has been passed on).
    drain_thread(tid);
  }
  rec.stack_off = static_cast<std::uint32_t>(ti.stack_arena.size());
  rec.stack_len = static_cast<std::uint32_t>(stack.size());
  ti.stack_arena.insert(ti.stack_arena.end(), stack.begin(), stack.end());
  ti.pending.push_back(rec);
}

void Profiler::attribute_pending(const PendingSample& rec, ThreadIngest& ti,
                                 ThreadProfile& tp, ThreadAttrState& as) {
  if (!rec.replayed) {
    for (auto& memo : as.memo) {
      memo.valid = std::min(memo.valid, rec.watermark);
    }
  }
  const MetricVec m = MetricVec::from_sample(rec.sample);
  const sim::Addr leaf_ip =
      cfg_.use_precise_ip ? rec.sample.precise_ip : rec.sample.signal_ip;
  const std::span<const sim::Addr> stack(ti.stack_arena.data() + rec.stack_off,
                                         rec.stack_len);
  const bool use_memo = !rec.replayed;
  // Same per-class pattern updates as the synchronous path, replayed in
  // sample order by the owning thread's drain — the recorded sequence
  // (and so the serialized table) is byte-identical across backends.
  switch (rec.cls) {
    case StorageClass::kNoMem:
    case StorageClass::kUnknown:
      if (cfg_.access_patterns && rec.cls == StorageClass::kUnknown) {
        record_pattern(tp, StorageClass::kUnknown, 0, rec.sample);
      }
      attribute_context(tp, rec.cls, as, Cct::kRootId, stack, leaf_ip, m,
                        use_memo);
      break;
    case StorageClass::kHeap: {
      if (cfg_.access_patterns) {
        record_pattern(tp, StorageClass::kHeap, rec.heap_path->pattern_id,
                       rec.sample);
      }
      Cct& cct = tp.cct(StorageClass::kHeap);
      Cct::NodeId anchor;
      // The heap-anchor memo keys on the interned path pointer, not the
      // stack, so replayed samples use (and refresh) it like any other.
      if (cfg_.memoized_attribution && as.last_heap_path == rec.heap_path) {
        anchor = as.heap_anchor;
      } else {
        Cct::NodeId cur = Cct::kRootId;
        for (const sim::Addr frame : rec.heap_path->frames) {
          cur = cct.child(cur, NodeKind::kCallSite, frame);
        }
        cur = cct.child(cur, NodeKind::kAllocPoint, rec.heap_path->alloc_ip);
        anchor = cct.child(cur, NodeKind::kVarData, 0);
        as.last_heap_path = rec.heap_path;
        as.heap_anchor = anchor;
      }
      attribute_context(tp, StorageClass::kHeap, as, anchor, stack, leaf_ip,
                        m, use_memo);
      break;
    }
    case StorageClass::kStatic:
    case StorageClass::kStack: {
      if (cfg_.access_patterns) {
        record_pattern(tp, rec.cls, rec.var_name, rec.sample);
      }
      Cct& cct = tp.cct(rec.cls);
      const Cct::NodeId dummy =
          cct.child(Cct::kRootId, NodeKind::kVarStatic, rec.var_name);
      attribute_context(tp, rec.cls, as, dummy, stack, leaf_ip, m, use_memo);
      break;
    }
  }
}

void Profiler::drain_thread(std::size_t tid) {
  ThreadIngest& ti = *ingest_[tid];
  if (ti.pending.empty()) return;
  OBS_SPAN_V("profiler.drain", "samples", ti.pending.size());
  ThreadProfile& tp = profile(static_cast<sim::ThreadId>(tid));
  ThreadAttrState& as = attr_state(tid);
  const bool metrics = obs::metrics_enabled();
  std::size_t nodes0 = 0;
  if (metrics) {
    for (std::size_t c = 0; c < kNumStorageClasses; ++c) {
      nodes0 += tp.cct(static_cast<StorageClass>(c)).size();
    }
  }
  const std::uint64_t t0 = steady_ns();
  for (const PendingSample& rec : ti.pending) {
    attribute_pending(rec, ti, tp, as);
  }
  const std::uint64_t dt = steady_ns() - t0;
  if (metrics) {
    tm_.sample_ns.add(dt);
    tm_.sample_ns_hist.record(dt);  // per-flush latency in deferred mode
    std::size_t nodes1 = 0;
    for (std::size_t c = 0; c < kNumStorageClasses; ++c) {
      nodes1 += tp.cct(static_cast<StorageClass>(c)).size();
    }
    if (nodes1 > nodes0) {
      tm_.cct_nodes.add(nodes1 - nodes0);
      tm_.cct_bytes.add((nodes1 - nodes0) * sizeof(Cct::Node));
    }
  }
  FlushSummary s;
  s.first_seq = ti.flushed;
  s.count = static_cast<std::uint32_t>(ti.pending.size());
  s.attr_ns = dt;
  ti.flushed += s.count;
  ti.pending.clear();
  ti.stack_arena.clear();
  if (ti.has_carry) {
    // The previous flush found the ring full. Drains are in order, so
    // the two sequence ranges are contiguous: coalesce and retry.
    ti.carry.count += s.count;
    ti.carry.attr_ns += s.attr_ns;
    s = ti.carry;
    ti.has_carry = false;
  }
  if (!ti.ring.push(s)) {
    ti.carry = s;
    ti.has_carry = true;
  }
}

void Profiler::on_slice_retired(rt::ThreadCtx& ctx) {
  const auto tid = static_cast<std::size_t>(ctx.tid());
  if (tid < ingest_.size() && ingest_[tid]) drain_thread(tid);
}

void Profiler::on_quiescent(rt::Team&) { drain_ingest(); }

void Profiler::drain_ingest() {
  if (!deferred_) return;
  for (std::size_t tid = 0; tid < ingest_.size(); ++tid) {
    if (ingest_[tid]) drain_thread(tid);
  }
  poll_handoff();
  // Summaries the rings could not take are consumed directly — we are at
  // a quiescent point, so producer-side state is safe to touch (and the
  // ring contents, all older, were just consumed above).
  for (std::size_t tid = 0; tid < ingest_.size(); ++tid) {
    if (ingest_[tid] && ingest_[tid]->has_carry) {
      consume_summary(tid, ingest_[tid]->carry);
      ingest_[tid]->has_carry = false;
    }
  }
  fold_tallies();
}

void Profiler::poll_handoff() {
  FlushSummary s;
  for (std::size_t tid = 0; tid < ingest_.size(); ++tid) {
    if (!ingest_[tid]) continue;
    while (ingest_[tid]->ring.pop(s)) consume_summary(tid, s);
  }
}

void Profiler::consume_summary(std::size_t tid, const FlushSummary& s) {
  if (hand_expected_.size() <= tid) hand_expected_.resize(tid + 1, 0);
  if (s.first_seq != hand_expected_[tid]) ++handoff_gaps_;
  hand_expected_[tid] = s.first_seq + s.count;
  ++handoff_flushes_;
  handoff_samples_ += s.count;
  if (cfg_.throttle.budget_ns != 0 && pmu_ != nullptr) {
    throttle_window_ns_ += s.attr_ns;
    throttle_window_n_ += s.count;
    if (throttle_window_n_ >= cfg_.throttle.window) maybe_throttle();
  }
}

void Profiler::fold_tallies() {
  for (auto& ip : ingest_) {
    if (!ip) continue;
    if (ip->handled != 0) {
      tm_.handled.add(ip->handled);
      ip->handled = 0;
    }
    for (std::size_t c = 0; c < kNumStorageClasses; ++c) {
      if (ip->class_counts[c] != 0) {
        tm_.class_samples[c].add(ip->class_counts[c]);
        ip->class_counts[c] = 0;
      }
    }
  }
  for (auto& ap : attr_) {
    if (!ap) continue;
    if (ap->memo_reused_tally != 0) {
      tm_.memo_reused.add(ap->memo_reused_tally);
      ap->memo_reused_tally = 0;
    }
    if (ap->memo_walked_tally != 0) {
      tm_.memo_walked.add(ap->memo_walked_tally);
      ap->memo_walked_tally = 0;
    }
  }
}

std::vector<ThreadProfile> Profiler::take_profiles() {
  drain_ingest();  // no-op unless deferred; flushes every buffered sample
  // Stamp the sampling rate the profile was actually taken at, so the
  // analyzer can rescale sample-derived metrics after degradation.
  std::uint64_t base_period = 0, eff_period = 0;
  if (pmu_ != nullptr && !pmu_->configs().empty()) {
    base_period = pmu_->configs()[0].period;
    eff_period = pmu_->effective_period(0);
  }
  std::vector<ThreadProfile> out;
  for (auto& p : profiles_) {
    if (p) {
      p->sampling_period = base_period;
      p->effective_period = eff_period;
      out.push_back(std::move(*p));
    }
  }
  profiles_.clear();
  // Every cached NodeId and StringId referred to the profiles just moved
  // out; a new measurement phase starts cold. Sequence numbers restart
  // with it (handoff_stats totals stay cumulative).
  attr_.clear();
  for (auto& ip : ingest_) {
    if (ip) ip = std::make_unique<ThreadIngest>(cfg_.ingest);
  }
  std::fill(hand_expected_.begin(), hand_expected_.end(), 0);
  return out;
}

}  // namespace dcprof::core
