#include "core/alloc_tracker.h"

#include <algorithm>

namespace dcprof::core {

namespace {
// Emulates the per-frame work of a real unwinder (return-address lookup
// and on-the-fly binary analysis to validate the frame).
std::uint64_t frame_work(sim::Addr a) {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 24; ++i) {
    h = (h ^ (h >> 31)) * 0xbf58476d1ce4e5b9ull;
  }
  return h;
}
volatile std::uint64_t g_unwind_sink = 0;
}  // namespace

std::shared_ptr<const AllocPath> AllocTracker::unwind(rt::ThreadCtx& ctx,
                                                      sim::Addr alloc_ip) {
  const std::span<const sim::Addr> stack = ctx.call_stack();
  PerThreadCache& cache = cache_[ctx.tid()];

  std::size_t reuse = 0;
  if (cfg_.memoized_unwind) {
    // The trampoline marks the least common ancestor of this unwind and
    // the previous one; frames above it need not be re-unwound.
    const std::size_t limit = std::min(stack.size(), cache.last_stack.size());
    while (reuse < limit && stack[reuse] == cache.last_stack[reuse]) ++reuse;
    if (reuse == stack.size() && reuse == cache.last_stack.size() &&
        alloc_ip == cache.last_alloc_ip && cache.last_path) {
      stats_.frames_reused += reuse;
      return cache.last_path;
    }
  }

  std::uint64_t sink = 0;
  for (std::size_t i = reuse; i < stack.size(); ++i) {
    sink ^= frame_work(stack[i]);
  }
  g_unwind_sink = sink;
  stats_.frames_unwound += stack.size() - reuse;
  stats_.frames_reused += reuse;

  auto path = paths_->intern(
      AllocPath{std::vector<sim::Addr>(stack.begin(), stack.end()), alloc_ip});
  cache.last_stack.assign(stack.begin(), stack.end());
  cache.last_alloc_ip = alloc_ip;
  cache.last_path = path;
  return path;
}

void AllocTracker::on_alloc(rt::ThreadCtx& ctx, sim::Addr base,
                            std::uint64_t size, sim::Addr alloc_ip) {
  ++stats_.allocations_seen;
  if (!cfg_.track_all && size < cfg_.size_threshold) {
    // Optionally sample sub-threshold allocations at a fixed period
    // (the paper's future-work extension for small-block data
    // structures) instead of dropping them all.
    if (cfg_.small_sample_period == 0 ||
        ++cache_[ctx.tid()].small_countdown % cfg_.small_sample_period != 0) {
      ++stats_.allocations_skipped;
      return;
    }
    ++stats_.small_sampled;
  }
  ++stats_.allocations_tracked;
  var_map_->insert(base, size, unwind(ctx, alloc_ip));
}

void AllocTracker::on_free(rt::ThreadCtx& ctx, sim::Addr base,
                           std::uint64_t size) {
  (void)ctx;
  (void)size;
  ++stats_.frees_seen;
  // Every free is observed — even of untracked blocks — so stale ranges
  // never linger in the map (the paper's correctness argument for
  // wrapping all frees).
  var_map_->erase(base);
}

}  // namespace dcprof::core
