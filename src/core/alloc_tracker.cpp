#include "core/alloc_tracker.h"

#include <algorithm>
#include <atomic>

#include "obs/tracer.h"

namespace dcprof::core {

namespace {
// Emulates the per-frame work of a real unwinder (return-address lookup
// and on-the-fly binary analysis to validate the frame).
std::uint64_t frame_work(sim::Addr a) {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 24; ++i) {
    h = (h ^ (h >> 31)) * 0xbf58476d1ce4e5b9ull;
  }
  return h;
}
// Written from every profiled thread; atomic (not volatile) so the
// optimizer-defeating store is also race-free.
std::atomic<std::uint64_t> g_unwind_sink{0};
}  // namespace

AllocTracker::AllocTracker(HeapVarMap& var_map, AllocPathSet& paths,
                           TrackerConfig cfg)
    : var_map_(&var_map), paths_(&paths), cfg_(cfg) {
  obs::Registry& reg = obs::Registry::global();
  tm_.tracked = reg.counter("tracker.allocations", {{"outcome", "tracked"}});
  tm_.skipped = reg.counter("tracker.allocations", {{"outcome", "skipped"}});
  tm_.small_sampled =
      reg.counter("tracker.allocations", {{"outcome", "small_sampled"}});
  tm_.frees = reg.counter("tracker.frees");
  tm_.frames_unwound = reg.counter("tracker.frames", {{"kind", "unwound"}});
  tm_.frames_reused = reg.counter("tracker.frames", {{"kind", "reused"}});
  tm_.alloc_ns = reg.counter("tracker.alloc_ns");
}

TrackerStats AllocTracker::stats() const {
  TrackerStats s;
  s.allocations_tracked = tm_.tracked.value();
  s.allocations_skipped = tm_.skipped.value();
  s.allocations_seen = s.allocations_tracked + s.allocations_skipped;
  s.small_sampled = tm_.small_sampled.value();
  s.frees_seen = tm_.frees.value();
  s.frames_unwound = tm_.frames_unwound.value();
  s.frames_reused = tm_.frames_reused.value();
  return s;
}

std::shared_ptr<const AllocPath> AllocTracker::unwind(rt::ThreadCtx& ctx,
                                                      sim::Addr alloc_ip) {
  const std::span<const sim::Addr> stack = ctx.call_stack();
  PerThreadCache& cache = cache_[ctx.tid()];

  std::size_t reuse = 0;
  if (cfg_.memoized_unwind) {
    // The trampoline marks the least common ancestor of this unwind and
    // the previous one; frames above it need not be re-unwound.
    const std::size_t limit = std::min(stack.size(), cache.last_stack.size());
    while (reuse < limit && stack[reuse] == cache.last_stack[reuse]) ++reuse;
    if (reuse == stack.size() && reuse == cache.last_stack.size() &&
        alloc_ip == cache.last_alloc_ip && cache.last_path) {
      tm_.frames_reused.add(reuse);
      return cache.last_path;
    }
  }

  std::uint64_t sink = 0;
  for (std::size_t i = reuse; i < stack.size(); ++i) {
    sink ^= frame_work(stack[i]);
  }
  g_unwind_sink.store(sink, std::memory_order_relaxed);
  tm_.frames_unwound.add(stack.size() - reuse);
  tm_.frames_reused.add(reuse);

  auto path = paths_->intern(
      AllocPath{std::vector<sim::Addr>(stack.begin(), stack.end()), alloc_ip});
  cache.last_stack.assign(stack.begin(), stack.end());
  cache.last_alloc_ip = alloc_ip;
  cache.last_path = path;
  return path;
}

void AllocTracker::on_alloc(rt::ThreadCtx& ctx, sim::Addr base,
                            std::uint64_t size, sim::Addr alloc_ip) {
  obs::ScopedNs timer(tm_.alloc_ns);
  if (!cfg_.track_all && size < cfg_.size_threshold) {
    // Optionally sample sub-threshold allocations at a fixed period
    // (the paper's future-work extension for small-block data
    // structures) instead of dropping them all.
    if (cfg_.small_sample_period == 0) {
      tm_.skipped.inc();
      return;
    }
    // The countdown moves only on sub-threshold events: every thread
    // samples exactly its Nth, 2Nth, ... small allocation no matter how
    // many large allocations (or other threads' allocations) interleave.
    auto& countdown = cache_[ctx.tid()].small_countdown;
    if (countdown == 0) countdown = cfg_.small_sample_period;  // re-arm
    if (--countdown != 0) {
      tm_.skipped.inc();
      return;
    }
    tm_.small_sampled.inc();
  }
  tm_.tracked.inc();
  OBS_SPAN("tracker.track_alloc");
  var_map_->insert(base, size, unwind(ctx, alloc_ip));
}

void AllocTracker::on_free(rt::ThreadCtx& ctx, sim::Addr base,
                           std::uint64_t size) {
  (void)ctx;
  (void)size;
  tm_.frees.inc();
  // Every free is observed — even of untracked blocks — so stale ranges
  // never linger in the map (the paper's correctness argument for
  // wrapping all frees).
  var_map_->erase(base);
}

}  // namespace dcprof::core
