// MPI-like multi-rank execution. Each rank owns an independent simulated
// machine (processes do not share an address space), a thread team, and an
// allocator. Ranks run on real host threads; messages and collectives
// carry simulated-clock timestamps so communication advances simulated
// time consistently. Because per-rank simulation state is isolated, the
// result is deterministic regardless of host scheduling.
#pragma once

#include <barrier>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "rt/alloc.h"
#include "rt/team.h"
#include "sim/machine.h"

namespace dcprof::rt {

/// Linear message cost model: latency alpha plus beta cycles per byte.
struct CommCost {
  Cycles alpha = 2000;
  double beta = 0.25;
  Cycles transfer(std::uint64_t bytes) const {
    return alpha + static_cast<Cycles>(beta * static_cast<double>(bytes));
  }
};

class Cluster;

/// One MPI-like process.
class Rank {
 public:
  Rank(Cluster& cluster, int rank, const sim::MachineConfig& cfg,
       int threads, ExecConfig exec = {});

  int id() const { return rank_; }
  int nranks() const;

  sim::Machine& machine() { return machine_; }
  Team& team() { return team_; }
  Allocator& alloc() { return alloc_; }
  /// The thread that issues MPI calls (the team master).
  ThreadCtx& comm_ctx() { return team_.master(); }

  /// Blocking eager send/recv with matching (src, dst, tag).
  void send(int dst, int tag, const void* data, std::uint64_t bytes);
  void recv(int src, int tag, void* data, std::uint64_t bytes);

  double allreduce_sum(double value);
  double allreduce_max(double value);
  /// Barrier across all ranks; also synchronizes simulated clocks.
  void barrier();

 private:
  Cluster* cluster_;
  int rank_;
  sim::Machine machine_;
  Team team_;
  Allocator alloc_;
};

class Cluster {
 public:
  /// `exec` selects each rank team's execution backend (ranks already run
  /// on real host threads; this additionally threads the per-rank teams).
  Cluster(int nranks, const sim::MachineConfig& cfg, int threads_per_rank,
          ExecConfig exec = {});
  ~Cluster();

  int nranks() const { return static_cast<int>(ranks_.size()); }
  Rank& rank(int r) { return *ranks_[static_cast<std::size_t>(r)]; }
  CommCost& comm_cost() { return cost_; }

  /// Runs `body` once per rank, each on its own host thread; rethrows the
  /// first rank exception after all ranks finish.
  ///
  /// Limitation (as with real MPI): if one rank dies while its peers are
  /// blocked inside a collective or a matching recv, the job hangs —
  /// SPMD code must keep collective sequences consistent across ranks.
  void run(const std::function<void(Rank&)>& body);

 private:
  friend class Rank;

  struct Message {
    std::vector<std::byte> data;
    Cycles sent_at = 0;
  };
  using Key = std::tuple<int, int, int>;  // src, dst, tag

  void post(int src, int dst, int tag, const void* data, std::uint64_t bytes,
            Cycles sent_at);
  Message take(int src, int dst, int tag);

  enum class CollectiveOp { kBarrier, kSum, kMax };
  /// Generic collective: deposits (clock, value); returns the combined
  /// value and sets the caller's clock past the synchronization point.
  double collective(Rank& rank, CollectiveOp op, double value);

  struct Completion {
    Cluster* cluster;
    void operator()() noexcept;
  };

  CommCost cost_;
  std::vector<std::unique_ptr<Rank>> ranks_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::map<Key, std::deque<Message>> queues_;

  // Collective rendezvous state (slots are per-rank, race-free).
  std::vector<Cycles> clock_slot_;
  std::vector<double> value_slot_;
  Cycles result_clock_ = 0;
  double result_sum_ = 0;
  double result_max_ = 0;
  std::unique_ptr<std::barrier<Completion>> rendezvous_;
};

}  // namespace dcprof::rt
