#include "rt/team.h"

#include <stdexcept>

namespace dcprof::rt {

Team::Team(sim::Machine& machine, int nthreads, ExecConfig exec)
    : exec_cfg_(exec), exec_(make_backend(exec)) {
  if (nthreads <= 0) throw std::invalid_argument("team needs >= 1 thread");
  const int cores = machine.config().num_cores();
  threads_.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    threads_.push_back(
        std::make_unique<ThreadCtx>(machine, t, t % cores));
  }
}

// Out of line so ExecBackend's (worker pool) destructor runs with the
// Team definition complete; the pool joins before threads_ dies.
Team::~Team() { exec_.reset(); }

void Team::barrier() {
  Cycles max = 0;
  for (const auto& t : threads_) {
    if (t->clock() > max) max = t->clock();
  }
  for (auto& t : threads_) t->set_clock(max);
}

Cycles Team::now() const {
  Cycles max = 0;
  for (const auto& t : threads_) {
    if (t->clock() > max) max = t->clock();
  }
  return max;
}

}  // namespace dcprof::rt
