// Virtual threads: each carries its own clock and a shadow call stack.
// The shadow stack is the ground truth the profiler's "unwinder" walks —
// the moral equivalent of HPCToolkit's on-the-fly binary-analysis unwind.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/machine.h"
#include "sim/types.h"

namespace dcprof::rt {

using sim::Addr;
using sim::Cycles;

class ThreadCtx {
 public:
  ThreadCtx(sim::Machine& machine, sim::ThreadId tid, sim::CoreId core)
      : machine_(&machine), tid_(tid), core_(core) {
    stack_.reserve(64);
  }

  sim::ThreadId tid() const { return tid_; }
  sim::CoreId core() const { return core_; }
  sim::NodeId node() const { return machine_->config().node_of(core_); }
  sim::Machine& machine() { return *machine_; }

  Cycles clock() const { return clock_; }
  void set_clock(Cycles c) { clock_ = c; }

  /// Issues a load of `size` bytes at data address `addr` from code `ip`.
  sim::AccessResult load(Addr addr, std::uint32_t size, Addr ip) {
    return machine_->access(tid_, core_, ip, addr, size, false, clock_);
  }
  /// Issues a store.
  sim::AccessResult store(Addr addr, std::uint32_t size, Addr ip) {
    return machine_->access(tid_, core_, ip, addr, size, true, clock_);
  }
  /// Retires `instrs` non-memory instructions at code `ip`.
  void compute(std::uint64_t instrs, Addr ip) {
    machine_->compute(tid_, core_, instrs, ip, clock_);
  }

  /// Shadow call stack of call-site IPs, outermost first. During a
  /// stack replay (epoch resolution of a deferred access) this is the
  /// snapshot taken at issue time, not the live stack.
  std::span<const Addr> call_stack() const {
    return replaying_ ? replay_ : std::span<const Addr>(stack_);
  }
  void push_frame(Addr call_site_ip) { stack_.push_back(call_site_ip); }
  void pop_frame() {
    stack_.pop_back();
    if (stack_.size() < stack_low_water_) stack_low_water_ = stack_.size();
  }
  std::size_t stack_depth() const { return stack_.size(); }

  /// Stack-version watermark for trampoline-style sample memoization:
  /// returns how many leading frames are guaranteed unchanged since the
  /// previous call (any deeper frame may have been popped and re-pushed
  /// in between — pushes alone never lower it). Calling it re-arms the
  /// watermark at the current depth.
  std::size_t take_stack_watermark() {
    if (replaying_) return 0;  // snapshot stack: no memoizable prefix
    const std::size_t w = stack_low_water_;
    stack_low_water_ = stack_.size();
    return w;
  }

  /// Epoch-sharded resolution: presents `frames` (the shadow stack
  /// snapshotted when a deferred access issued) as this thread's call
  /// stack while the resolver replays the access. The live stack and its
  /// memoization watermark are untouched — take_stack_watermark() reports
  /// 0 during a replay so nothing about the snapshot gets memoized.
  void begin_stack_replay(std::span<const Addr> frames) {
    replay_ = frames;
    replaying_ = true;
  }
  void end_stack_replay() { replaying_ = false; }
  bool stack_replay_active() const { return replaying_; }

  /// Reserves `bytes` of this thread's stack segment (a frame-local
  /// buffer); 64-byte aligned, bump-allocated, released with
  /// stack_release. Addresses land in the stack segment, which the
  /// profiler attributes to "stack (thread N)".
  Addr stack_alloc(std::uint64_t bytes) {
    const Addr base = machine_->aspace().stack_base(tid_) + stack_cursor_;
    stack_cursor_ += (bytes + 63) & ~std::uint64_t{63};
    return base;
  }
  /// Pops the most recent `bytes` (callers release in LIFO order).
  void stack_release(std::uint64_t bytes) {
    stack_cursor_ -= (bytes + 63) & ~std::uint64_t{63};
  }

 private:
  sim::Machine* machine_;
  sim::ThreadId tid_;
  sim::CoreId core_;
  Cycles clock_ = 0;
  std::uint64_t stack_cursor_ = 0;
  std::size_t stack_low_water_ = 0;
  std::vector<Addr> stack_;
  std::span<const Addr> replay_;
  bool replaying_ = false;
};

/// RAII frame: constructing pushes a call site onto the shadow stack.
class Scope {
 public:
  Scope(ThreadCtx& ctx, Addr call_site_ip) : ctx_(&ctx) {
    ctx_->push_frame(call_site_ip);
  }
  ~Scope() { ctx_->pop_frame(); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  ThreadCtx* ctx_;
};

}  // namespace dcprof::rt
