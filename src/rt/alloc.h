// The malloc-family allocation API with NUMA placement policies:
//  * default first-touch (Linux),
//  * per-allocation interleaving (the libnuma numa_alloc_interleaved analog),
//  * node binding, and
//  * a process-wide interleave switch (the `numactl --interleave=all` analog).
// calloc zeroes its block immediately in the calling thread, which is the
// precise mechanism by which master-thread calloc places every page on the
// master's NUMA node — the bug the paper's case studies diagnose.
#pragma once

#include <cstdint>
#include <functional>

#include "rt/thread.h"
#include "sim/machine.h"
#include "sim/page_table.h"

namespace dcprof::rt {

enum class AllocPolicy : std::uint8_t {
  kDefault,     ///< whatever the process-wide default is
  kFirstTouch,  ///< explicit first-touch
  kInterleave,  ///< pages round-robin across NUMA nodes
  kOnNode,      ///< bind to one node
};

/// Observation hooks the profiler's allocation tracker installs.
/// on_alloc additionally receives the allocation call instruction.
struct AllocHooks {
  std::function<void(ThreadCtx&, sim::Addr, std::uint64_t, sim::Addr)>
      on_alloc;
  std::function<void(ThreadCtx&, sim::Addr, std::uint64_t)> on_free;
};

class Allocator {
 public:
  explicit Allocator(sim::Machine& machine) : machine_(&machine) {}

  /// numactl-style process-wide interleaving of all future allocations.
  void set_global_interleave(bool on) { global_interleave_ = on; }
  bool global_interleave() const { return global_interleave_; }

  void set_hooks(AllocHooks hooks) { hooks_ = std::move(hooks); }

  /// Allocates without touching: pages are placed lazily by first touch
  /// (or per `policy`). `ip` is the allocation call instruction.
  sim::Addr malloc(ThreadCtx& ctx, std::uint64_t size, sim::Addr ip,
                   AllocPolicy policy = AllocPolicy::kDefault,
                   sim::NodeId node = sim::kNoNode);

  /// Allocates and zeroes: the calling thread touches every page now.
  sim::Addr calloc(ThreadCtx& ctx, std::uint64_t count, std::uint64_t elem,
                   sim::Addr ip, AllocPolicy policy = AllocPolicy::kDefault,
                   sim::NodeId node = sim::kNoNode);

  /// Grows/shrinks a block: allocates, copies (touching the new block in
  /// the calling thread), frees the old block.
  sim::Addr realloc(ThreadCtx& ctx, sim::Addr old_addr,
                    std::uint64_t new_size, sim::Addr ip,
                    AllocPolicy policy = AllocPolicy::kDefault);

  void free(ThreadCtx& ctx, sim::Addr addr);

  std::uint64_t bytes_live() const {
    return machine_->aspace().heap_bytes_in_use();
  }
  std::uint64_t allocations() const { return allocations_; }
  std::uint64_t frees() const { return frees_; }

 private:
  sim::PlacementPolicy resolve(AllocPolicy policy) const;
  void touch_pages(ThreadCtx& ctx, sim::Addr base, std::uint64_t size,
                   sim::Addr ip);

  sim::Machine* machine_;
  AllocHooks hooks_;
  bool global_interleave_ = false;
  std::uint64_t allocations_ = 0;
  std::uint64_t frees_ = 0;
};

}  // namespace dcprof::rt
