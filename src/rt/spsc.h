// Bounded lock-free single-producer/single-consumer ring. Used for the
// per-thread sample-flush handoff between a workload thread draining its
// own sample buffer and the profiler's consumer: the producer never
// blocks (a full ring is reported to the caller, who coalesces), and the
// consumer never takes a lock.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

namespace dcprof::rt {

/// Classic two-index SPSC ring over a power-of-two slot array. `push` is
/// safe from exactly one producer thread, `pop` from exactly one consumer
/// thread, concurrently. The release store on each index paired with the
/// acquire load on the other side is what publishes slot contents.
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2). The index
  /// masking below is only correct for power-of-two sizes, so the
  /// invariant is asserted rather than trusted.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    assert(cap >= 2 && (cap & (cap - 1)) == 0 &&
           "ring capacity must be a power of two");
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false (without writing) when the ring is full.
  bool push(const T& v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[t & mask_] = v;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == h) return false;
    out = slots_[h & mask_];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (racy by nature; a false "empty" just
  /// means the producer's push was not yet visible).
  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

 private:
  std::size_t mask_ = 0;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace dcprof::rt
