#include "rt/exec.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "rt/team.h"

namespace dcprof::rt {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kDeterministic: return "det";
    case BackendKind::kThreaded: return "threads";
  }
  return "?";
}

std::optional<BackendKind> parse_backend(std::string_view name) {
  if (name == "det" || name == "deterministic") {
    return BackendKind::kDeterministic;
  }
  if (name == "threads" || name == "threaded") return BackendKind::kThreaded;
  return std::nullopt;
}

namespace {

/// Static block partition of [begin, end) over nt threads: thread t owns
/// [begin + t*per, min(begin + (t+1)*per, end)). Shared by both backends
/// so they cannot drift apart.
struct Partition {
  std::int64_t per = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  Partition(std::int64_t b, std::int64_t e, std::int64_t nt)
      : per((e - b + nt - 1) / nt), begin(b), end(e) {}
  std::int64_t lo(std::int64_t t) const { return begin + t * per; }
  std::int64_t hi(std::int64_t t) const {
    const std::int64_t h = lo(t) + per;
    const std::int64_t clamped = h < end ? h : end;
    return clamped > lo(t) ? clamped : lo(t);
  }
};

/// The original single-host-thread policy: one chunk per thread per
/// round, threads in tid order. This order *is* the contract the
/// threaded backend reproduces.
class DeterministicBackend final : public ExecBackend {
 public:
  bool concurrent() const override { return false; }

  void run_for(Team& team, std::int64_t begin, std::int64_t end,
               std::int64_t chunk, ForBodyRef body) override {
    team.barrier();
    const std::int64_t len = end - begin;
    if (len <= 0) return;
    const auto nt = static_cast<std::int64_t>(team.size());
    const Partition part(begin, end, nt);
    struct Range {
      std::int64_t next;
      std::int64_t end;
    };
    std::vector<Range> ranges;
    ranges.reserve(static_cast<std::size_t>(nt));
    for (std::int64_t t = 0; t < nt; ++t) {
      ranges.push_back(Range{part.lo(t), part.hi(t)});
    }
    bool any = true;
    while (any) {
      any = false;
      for (std::int64_t t = 0; t < nt; ++t) {
        auto& r = ranges[static_cast<std::size_t>(t)];
        if (r.next >= r.end) continue;
        any = true;
        ThreadCtx& ctx = team.thread(static_cast<int>(t));
        const std::int64_t stop =
            r.next + chunk < r.end ? r.next + chunk : r.end;
        for (std::int64_t i = r.next; i < stop; ++i) body(ctx, i);
        r.next = stop;
      }
    }
    team.barrier();
  }

  void run_region(Team& team, RegionBodyRef body) override {
    team.barrier();
    for (int t = 0; t < team.size(); ++t) body(team.thread(t));
    team.barrier();
  }
};

/// Real std::threads, turn-token serialized into the deterministic
/// backend's exact global chunk order. Workers persist across constructs
/// (parked on a condition variable between dispatches).
class ThreadedBackend final : public ExecBackend {
 public:
  ~ThreadedBackend() override {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  bool concurrent() const override { return true; }

  void run_for(Team& team, std::int64_t begin, std::int64_t end,
               std::int64_t chunk, ForBodyRef body) override {
    team.barrier();
    const std::int64_t len = end - begin;
    if (len <= 0) return;
    Task t;
    t.is_for = true;
    t.begin = begin;
    t.end = end;
    t.chunk = chunk > 0 ? chunk : 1;
    const auto nt = static_cast<std::int64_t>(team.size());
    t.per = (len + nt - 1) / nt;
    t.rounds = static_cast<std::uint64_t>((t.per + t.chunk - 1) / t.chunk);
    t.for_body = body;
    dispatch(team, t);
    team.barrier();
  }

  void run_region(Team& team, RegionBodyRef body) override {
    team.barrier();
    Task t;
    t.is_for = false;
    t.rounds = 1;
    t.region_body = body;
    dispatch(team, t);
    team.barrier();
  }

 private:
  struct Task {
    bool is_for = false;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t per = 0;
    std::int64_t chunk = 0;
    std::uint64_t rounds = 0;
    ForBodyRef for_body{};
    RegionBodyRef region_body{};
  };

  void start(Team& team) {
    if (!workers_.empty()) return;
    team_ = &team;
    const int nt = team.size();
    workers_.reserve(static_cast<std::size_t>(nt));
    for (int w = 0; w < nt; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  /// Publishes one task to all workers, waits for completion, then fires
  /// the quiescent hook (workers are parked again: the controlling thread
  /// may touch any per-thread state). The mutex handoff on both edges is
  /// what makes the master's pre-dispatch writes (clock sync, TeamScope
  /// frames) visible to workers and their results visible back.
  void dispatch(Team& team, const Task& t) {
    start(team);
    turn_.store(0, std::memory_order_relaxed);
    aborted_.store(false, std::memory_order_relaxed);
    {
      std::lock_guard lock(mu_);
      task_ = t;
      active_ = static_cast<int>(workers_.size());
      ++gen_;
    }
    cv_.notify_all();
    std::exception_ptr err;
    {
      std::unique_lock lock(mu_);
      done_cv_.wait(lock, [&] { return active_ == 0; });
      err = std::exchange(error_, nullptr);
    }
    if (err) std::rethrow_exception(err);
    if (ExecObserver* obs = team.exec_observer()) obs->on_quiescent(team);
  }

  void worker_loop(int w) {
    std::uint64_t seen = 0;
    for (;;) {
      Task t;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] { return stop_ || gen_ != seen; });
        if (stop_) return;
        seen = gen_;
        t = task_;
      }
      if (t.is_for) {
        run_for_worker(w, t);
      } else {
        run_region_worker(w, t);
      }
      {
        std::lock_guard lock(mu_);
        if (--active_ == 0) done_cv_.notify_all();
      }
    }
  }

  /// Blocks until the global turn counter reaches `slot`. Turn passing is
  /// the release/acquire chain that orders every machine access.
  void await_turn(std::uint64_t slot) {
    while (turn_.load(std::memory_order_acquire) != slot) {
      std::this_thread::yield();
    }
  }

  void record_error() {
    std::lock_guard lock(mu_);
    if (!error_) error_ = std::current_exception();
    aborted_.store(true, std::memory_order_relaxed);
  }

  void run_for_worker(int w, const Task& t) {
    ThreadCtx& ctx = team_->thread(w);
    ExecObserver* const obs = team_->exec_observer();
    const auto nt = static_cast<std::uint64_t>(team_->size());
    const Partition part(t.begin, t.end, static_cast<std::int64_t>(nt));
    std::int64_t next = part.lo(w);
    const std::int64_t hi = part.hi(w);
    for (std::uint64_t r = 0; r < t.rounds; ++r) {
      const std::uint64_t slot = r * nt + static_cast<std::uint64_t>(w);
      await_turn(slot);
      if (next < hi && !aborted_.load(std::memory_order_relaxed)) {
        try {
          const std::int64_t stop =
              next + t.chunk < hi ? next + t.chunk : hi;
          for (std::int64_t i = next; i < stop; ++i) t.for_body(ctx, i);
          next = stop;
        } catch (...) {
          record_error();
        }
      }
      turn_.store(slot + 1, std::memory_order_release);
      // Outside the turn: attribute this thread's buffered samples while
      // the next worker simulates. This overlap is the multicore win.
      if (obs != nullptr && !aborted_.load(std::memory_order_relaxed)) {
        obs->on_slice_retired(ctx);
      }
    }
  }

  void run_region_worker(int w, const Task& t) {
    ThreadCtx& ctx = team_->thread(w);
    ExecObserver* const obs = team_->exec_observer();
    await_turn(static_cast<std::uint64_t>(w));
    if (!aborted_.load(std::memory_order_relaxed)) {
      try {
        t.region_body(ctx);
      } catch (...) {
        record_error();
      }
    }
    turn_.store(static_cast<std::uint64_t>(w) + 1,
                std::memory_order_release);
    if (obs != nullptr && !aborted_.load(std::memory_order_relaxed)) {
      obs->on_slice_retired(ctx);
    }
  }

  Team* team_ = nullptr;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       ///< task published / stop
  std::condition_variable done_cv_;  ///< all workers finished a task
  std::uint64_t gen_ = 0;            ///< task generation (guarded by mu_)
  int active_ = 0;                   ///< workers still on the task
  bool stop_ = false;
  Task task_;
  std::exception_ptr error_;  ///< first body exception (guarded by mu_)
  std::atomic<std::uint64_t> turn_{0};
  std::atomic<bool> aborted_{false};
};

}  // namespace

std::unique_ptr<ExecBackend> make_backend(const ExecConfig& cfg) {
  if (cfg.backend == BackendKind::kThreaded) {
    return std::make_unique<ThreadedBackend>();
  }
  return std::make_unique<DeterministicBackend>();
}

}  // namespace dcprof::rt
