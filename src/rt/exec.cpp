#include "rt/exec.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/registry.h"
#include "rt/team.h"

namespace dcprof::rt {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kDeterministic: return "det";
    case BackendKind::kThreaded: return "threads";
    case BackendKind::kSharded: return "sockets";
  }
  return "?";
}

std::optional<BackendKind> parse_backend(std::string_view name) {
  if (name == "det" || name == "deterministic") {
    return BackendKind::kDeterministic;
  }
  if (name == "threads" || name == "threaded") return BackendKind::kThreaded;
  if (name == "sockets" || name == "sharded") return BackendKind::kSharded;
  return std::nullopt;
}

namespace {

/// Static block partition of [begin, end) over nt threads: thread t owns
/// [begin + t*per, min(begin + (t+1)*per, end)). Shared by both backends
/// so they cannot drift apart.
struct Partition {
  std::int64_t per = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  Partition(std::int64_t b, std::int64_t e, std::int64_t nt)
      : per((e - b + nt - 1) / nt), begin(b), end(e) {}
  std::int64_t lo(std::int64_t t) const { return begin + t * per; }
  std::int64_t hi(std::int64_t t) const {
    const std::int64_t h = lo(t) + per;
    const std::int64_t clamped = h < end ? h : end;
    return clamped > lo(t) ? clamped : lo(t);
  }
};

/// The original single-host-thread policy: one chunk per thread per
/// round, threads in tid order. This order *is* the contract the
/// threaded backend reproduces.
class DeterministicBackend final : public ExecBackend {
 public:
  bool concurrent() const override { return false; }

  void run_for(Team& team, std::int64_t begin, std::int64_t end,
               std::int64_t chunk, ForBodyRef body) override {
    team.barrier();
    const std::int64_t len = end - begin;
    if (len <= 0) return;
    const auto nt = static_cast<std::int64_t>(team.size());
    const Partition part(begin, end, nt);
    struct Range {
      std::int64_t next;
      std::int64_t end;
    };
    std::vector<Range> ranges;
    ranges.reserve(static_cast<std::size_t>(nt));
    for (std::int64_t t = 0; t < nt; ++t) {
      ranges.push_back(Range{part.lo(t), part.hi(t)});
    }
    bool any = true;
    while (any) {
      any = false;
      for (std::int64_t t = 0; t < nt; ++t) {
        auto& r = ranges[static_cast<std::size_t>(t)];
        if (r.next >= r.end) continue;
        any = true;
        ThreadCtx& ctx = team.thread(static_cast<int>(t));
        const std::int64_t stop =
            r.next + chunk < r.end ? r.next + chunk : r.end;
        for (std::int64_t i = r.next; i < stop; ++i) body(ctx, i);
        r.next = stop;
      }
    }
    team.barrier();
  }

  void run_region(Team& team, RegionBodyRef body) override {
    team.barrier();
    for (int t = 0; t < team.size(); ++t) body(team.thread(t));
    team.barrier();
  }
};

/// Real std::threads, turn-token serialized into the deterministic
/// backend's exact global chunk order. Workers persist across constructs
/// (parked on a condition variable between dispatches).
class ThreadedBackend final : public ExecBackend {
 public:
  ~ThreadedBackend() override {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  bool concurrent() const override { return true; }

  void run_for(Team& team, std::int64_t begin, std::int64_t end,
               std::int64_t chunk, ForBodyRef body) override {
    team.barrier();
    const std::int64_t len = end - begin;
    if (len <= 0) return;
    Task t;
    t.is_for = true;
    t.begin = begin;
    t.end = end;
    t.chunk = chunk > 0 ? chunk : 1;
    const auto nt = static_cast<std::int64_t>(team.size());
    t.per = (len + nt - 1) / nt;
    t.rounds = static_cast<std::uint64_t>((t.per + t.chunk - 1) / t.chunk);
    t.for_body = body;
    dispatch(team, t);
    team.barrier();
  }

  void run_region(Team& team, RegionBodyRef body) override {
    team.barrier();
    Task t;
    t.is_for = false;
    t.rounds = 1;
    t.region_body = body;
    dispatch(team, t);
    team.barrier();
  }

 private:
  struct Task {
    bool is_for = false;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t per = 0;
    std::int64_t chunk = 0;
    std::uint64_t rounds = 0;
    ForBodyRef for_body{};
    RegionBodyRef region_body{};
  };

  void start(Team& team) {
    if (!workers_.empty()) return;
    team_ = &team;
    const int nt = team.size();
    workers_.reserve(static_cast<std::size_t>(nt));
    for (int w = 0; w < nt; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  /// Publishes one task to all workers, waits for completion, then fires
  /// the quiescent hook (workers are parked again: the controlling thread
  /// may touch any per-thread state). The mutex handoff on both edges is
  /// what makes the master's pre-dispatch writes (clock sync, TeamScope
  /// frames) visible to workers and their results visible back.
  void dispatch(Team& team, const Task& t) {
    start(team);
    turn_.store(0, std::memory_order_relaxed);
    aborted_.store(false, std::memory_order_relaxed);
    {
      std::lock_guard lock(mu_);
      task_ = t;
      active_ = static_cast<int>(workers_.size());
      ++gen_;
    }
    cv_.notify_all();
    std::exception_ptr err;
    {
      std::unique_lock lock(mu_);
      done_cv_.wait(lock, [&] { return active_ == 0; });
      err = std::exchange(error_, nullptr);
    }
    if (err) std::rethrow_exception(err);
    if (ExecObserver* obs = team.exec_observer()) obs->on_quiescent(team);
  }

  void worker_loop(int w) {
    std::uint64_t seen = 0;
    for (;;) {
      Task t;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] { return stop_ || gen_ != seen; });
        if (stop_) return;
        seen = gen_;
        t = task_;
      }
      if (t.is_for) {
        run_for_worker(w, t);
      } else {
        run_region_worker(w, t);
      }
      {
        std::lock_guard lock(mu_);
        if (--active_ == 0) done_cv_.notify_all();
      }
    }
  }

  /// Blocks until the global turn counter reaches `slot`. Turn passing is
  /// the release/acquire chain that orders every machine access.
  void await_turn(std::uint64_t slot) {
    while (turn_.load(std::memory_order_acquire) != slot) {
      std::this_thread::yield();
    }
  }

  void record_error() {
    std::lock_guard lock(mu_);
    if (!error_) error_ = std::current_exception();
    aborted_.store(true, std::memory_order_relaxed);
  }

  void run_for_worker(int w, const Task& t) {
    ThreadCtx& ctx = team_->thread(w);
    ExecObserver* const obs = team_->exec_observer();
    const auto nt = static_cast<std::uint64_t>(team_->size());
    const Partition part(t.begin, t.end, static_cast<std::int64_t>(nt));
    std::int64_t next = part.lo(w);
    const std::int64_t hi = part.hi(w);
    for (std::uint64_t r = 0; r < t.rounds; ++r) {
      const std::uint64_t slot = r * nt + static_cast<std::uint64_t>(w);
      await_turn(slot);
      if (next < hi && !aborted_.load(std::memory_order_relaxed)) {
        try {
          const std::int64_t stop =
              next + t.chunk < hi ? next + t.chunk : hi;
          for (std::int64_t i = next; i < stop; ++i) t.for_body(ctx, i);
          next = stop;
        } catch (...) {
          record_error();
        }
      }
      turn_.store(slot + 1, std::memory_order_release);
      // Outside the turn: attribute this thread's buffered samples while
      // the next worker simulates. This overlap is the multicore win.
      if (obs != nullptr && !aborted_.load(std::memory_order_relaxed)) {
        obs->on_slice_retired(ctx);
      }
    }
  }

  void run_region_worker(int w, const Task& t) {
    ThreadCtx& ctx = team_->thread(w);
    ExecObserver* const obs = team_->exec_observer();
    await_turn(static_cast<std::uint64_t>(w));
    if (!aborted_.load(std::memory_order_relaxed)) {
      try {
        t.region_body(ctx);
      } catch (...) {
        record_error();
      }
    }
    turn_.store(static_cast<std::uint64_t>(w) + 1,
                std::memory_order_release);
    if (obs != nullptr && !aborted_.load(std::memory_order_relaxed)) {
      obs->on_slice_retired(ctx);
    }
  }

  Team* team_ = nullptr;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       ///< task published / stop
  std::condition_variable done_cv_;  ///< all workers finished a task
  std::uint64_t gen_ = 0;            ///< task generation (guarded by mu_)
  int active_ = 0;                   ///< workers still on the task
  bool stop_ = false;
  Task task_;
  std::exception_ptr error_;  ///< first body exception (guarded by mu_)
  std::atomic<std::uint64_t> turn_{0};
  std::atomic<bool> aborted_{false};
};

/// Epoch-sharded backend: one persistent host worker per simulated
/// *socket group* (the team threads whose cores share a socket). Within
/// an epoch the groups run truly concurrently — no turn token — because
/// every machine structure they touch is core- or socket-private; the
/// accesses that are not (remote-homed pages, first touches) arrive here
/// through sim::DeferSink and queue per thread. At each epoch barrier
/// the last-arriving worker replays every queue through
/// Machine::resolve_deferred in canonical (socket, thread, issue) order
/// while the rest spin parked, so shared state (first-touch bindings,
/// DRAM controller backlogs) still evolves in ONE reproducible global
/// order. `sharded_serial` runs the identical epoch schedule inline on
/// the calling thread: the verification twin every parallel run is
/// byte-compared against.
///
/// Memory-ordering sketch: workers arriving at the barrier fetch_add the
/// arrival counter with acq_rel; the release sequence on that counter
/// publishes all their epoch writes (queues, caches, clocks) to the
/// last arriver, which resolves and then bumps the generation with a
/// release store that the spinners' acquire loads pair with — publishing
/// the resolver's mutations (clock bumps, sample buffer appends) back.
class ShardedBackend final : public ExecBackend, public sim::DeferSink {
 public:
  explicit ShardedBackend(const ExecConfig& cfg)
      : serial_(cfg.sharded_serial),
        epoch_rounds_(cfg.epoch_rounds > 0 ? cfg.epoch_rounds : 1) {
    obs::Registry& reg = obs::Registry::global();
    epochs_ = reg.counter("rt.sharded.epochs");
    deferred_remote_ = reg.counter("rt.sharded.deferred", {{"kind", "remote"}});
    deferred_first_touch_ =
        reg.counter("rt.sharded.deferred", {{"kind", "first_touch"}});
    deferred_cycles_ = reg.counter("rt.sharded.deferred_cycles");
    barrier_wait_ns_ = reg.counter("rt.sharded.barrier_wait_ns");
  }

  ~ShardedBackend() override {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  /// True in BOTH modes (parallel and serial twin): the profiler must
  /// take the identical deferred-ingest path for profiles to match.
  bool concurrent() const override { return true; }

  void run_for(Team& team, std::int64_t begin, std::int64_t end,
               std::int64_t chunk, ForBodyRef body) override {
    team.barrier();
    const std::int64_t len = end - begin;
    if (len <= 0) return;
    Task t;
    t.is_for = true;
    t.begin = begin;
    t.end = end;
    t.chunk = chunk > 0 ? chunk : 1;
    const auto nt = static_cast<std::int64_t>(team.size());
    t.per = (len + nt - 1) / nt;
    t.rounds = static_cast<std::uint64_t>((t.per + t.chunk - 1) / t.chunk);
    t.for_body = body;
    execute(team, t);
    team.barrier();
  }

  void run_region(Team& team, RegionBodyRef body) override {
    team.barrier();
    Task t;
    t.is_for = false;
    t.rounds = 1;
    t.region_body = body;
    execute(team, t);
    team.barrier();
  }

  /// sim::DeferSink — called mid-epoch on the host thread driving
  /// `d.tid`'s group (queues are per thread, so never contended). The
  /// shadow stack is snapshotted NOW: whether this access gets sampled is
  /// only known at resolve time, and by then the live stack has moved on.
  void on_deferred(const sim::DeferredAccess& d) override {
    Queue& q = queues_[static_cast<std::size_t>(d.tid)];
    const std::span<const Addr> stack =
        team_->thread(static_cast<int>(d.tid)).call_stack();
    DeferredRec rec;
    rec.d = d;
    rec.stack_off = static_cast<std::uint32_t>(q.arena.size());
    rec.stack_len = static_cast<std::uint32_t>(stack.size());
    q.arena.insert(q.arena.end(), stack.begin(), stack.end());
    q.recs.push_back(rec);
    (d.first_touch ? deferred_first_touch_ : deferred_remote_).inc();
  }

 private:
  struct Task {
    bool is_for = false;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t per = 0;
    std::int64_t chunk = 0;
    std::uint64_t rounds = 0;
    ForBodyRef for_body{};
    RegionBodyRef region_body{};
  };

  struct DeferredRec {
    sim::DeferredAccess d;
    std::uint32_t stack_off = 0;  ///< into Queue::arena
    std::uint32_t stack_len = 0;
  };

  /// One issuing thread's epoch queue: records in issue order plus a
  /// flat arena holding their stack snapshots back to back.
  struct Queue {
    std::vector<DeferredRec> recs;
    std::vector<Addr> arena;
  };

  /// Partitions the team's threads into socket groups (ascending tids;
  /// sockets with no threads dropped). Fixed for the team's lifetime —
  /// a Team owns its backend, so `team` never changes across calls.
  void ensure_groups(Team& team) {
    if (grouped_) return;
    team_ = &team;
    machine_ = &team.master().machine();
    const sim::MachineConfig& cfg = machine_->config();
    std::vector<std::vector<int>> by_socket(
        static_cast<std::size_t>(cfg.sockets));
    for (int t = 0; t < team.size(); ++t) {
      const int s = cfg.socket_of(team.thread(t).core());
      by_socket[static_cast<std::size_t>(s)].push_back(t);
    }
    for (auto& g : by_socket) {
      if (!g.empty()) groups_.push_back(std::move(g));
    }
    queues_.resize(static_cast<std::size_t>(team.size()));
    grouped_ = true;
  }

  void execute(Team& team, const Task& t) {
    ensure_groups(team);
    aborted_.store(false, std::memory_order_relaxed);
    machine_->set_defer_sink(this);
    if (serial_ || groups_.size() == 1) {
      run_serial(t);
    } else {
      dispatch(t);
    }
    machine_->set_defer_sink(nullptr);
    std::exception_ptr err;
    {
      std::lock_guard lock(mu_);
      err = std::exchange(error_, nullptr);
    }
    if (err) std::rethrow_exception(err);
    if (ExecObserver* obs = team.exec_observer()) obs->on_quiescent(team);
  }

  /// The verification twin: identical epoch schedule, one host thread.
  /// Socket groups run back to back within each epoch — legal because
  /// their intra-epoch state is disjoint by construction, so sequential
  /// and concurrent execution produce the same machine state.
  void run_serial(const Task& t) {
    for (std::uint64_t r0 = 0; r0 < t.rounds; r0 += epoch_rounds_) {
      const std::uint64_t r1 =
          r0 + epoch_rounds_ < t.rounds ? r0 + epoch_rounds_ : t.rounds;
      for (std::size_t g = 0; g < groups_.size(); ++g) {
        run_group_rounds(g, t, r0, r1);
      }
      finish_epoch();
    }
  }

  void start() {
    if (!workers_.empty()) return;
    const std::size_t ng = groups_.size();
    workers_.reserve(ng);
    for (std::size_t g = 0; g < ng; ++g) {
      workers_.emplace_back([this, g] { worker_loop(g); });
    }
  }

  /// Publishes one task to the socket workers and waits for completion.
  /// The mutex handoff on both edges makes the master's pre-dispatch
  /// writes (clock sync, TeamScope frames, the defer-sink install)
  /// visible to workers and their results visible back.
  void dispatch(const Task& t) {
    start();
    {
      std::lock_guard lock(mu_);
      task_ = t;
      active_ = static_cast<int>(workers_.size());
      ++task_gen_;
    }
    cv_.notify_all();
    {
      std::unique_lock lock(mu_);
      done_cv_.wait(lock, [&] { return active_ == 0; });
    }
  }

  void worker_loop(std::size_t g) {
    std::uint64_t seen = 0;
    for (;;) {
      Task t;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] { return stop_ || task_gen_ != seen; });
        if (stop_) return;
        seen = task_gen_;
        t = task_;
      }
      for (std::uint64_t r0 = 0; r0 < t.rounds; r0 += epoch_rounds_) {
        const std::uint64_t r1 =
            r0 + epoch_rounds_ < t.rounds ? r0 + epoch_rounds_ : t.rounds;
        run_group_rounds(g, t, r0, r1);
        epoch_barrier();
      }
      {
        std::lock_guard lock(mu_);
        if (--active_ == 0) done_cv_.notify_all();
      }
    }
  }

  /// Runs rounds [r0, r1) of group `g`: one chunk per group thread per
  /// round, threads in ascending tid order — the deterministic schedule
  /// restricted to this socket. After each chunk the worker drains that
  /// thread's sample buffer (the same overlap win as ThreadedBackend,
  /// but here the *simulation* overlaps across sockets too).
  void run_group_rounds(std::size_t g, const Task& t, std::uint64_t r0,
                        std::uint64_t r1) {
    ExecObserver* const obs = team_->exec_observer();
    for (const int w : groups_[g]) {
      ThreadCtx& ctx = team_->thread(w);
      if (t.is_for) {
        const Partition part(t.begin, t.end,
                             static_cast<std::int64_t>(team_->size()));
        const std::int64_t lo = part.lo(w);
        const std::int64_t hi = part.hi(w);
        for (std::uint64_t r = r0; r < r1; ++r) {
          const std::int64_t next =
              lo + static_cast<std::int64_t>(r) * t.chunk;
          if (next >= hi) continue;
          const std::int64_t stop =
              next + t.chunk < hi ? next + t.chunk : hi;
          if (!aborted_.load(std::memory_order_relaxed)) {
            try {
              for (std::int64_t i = next; i < stop; ++i) t.for_body(ctx, i);
            } catch (...) {
              record_error();
            }
          }
          if (obs != nullptr && !aborted_.load(std::memory_order_relaxed)) {
            obs->on_slice_retired(ctx);
          }
        }
      } else {
        if (!aborted_.load(std::memory_order_relaxed)) {
          try {
            t.region_body(ctx);
          } catch (...) {
            record_error();
          }
        }
        if (obs != nullptr && !aborted_.load(std::memory_order_relaxed)) {
          obs->on_slice_retired(ctx);
        }
      }
    }
  }

  /// Sense-reversing barrier over the socket workers. The last arriver
  /// resolves the epoch while everyone else spins on the generation;
  /// see the class comment for the release/acquire pairing.
  void epoch_barrier() {
    const std::uint64_t my_gen = gen_.load(std::memory_order_acquire);
    const auto before =
        arrived_.fetch_add(1, std::memory_order_acq_rel);
    if (before + 1 == static_cast<std::uint32_t>(groups_.size())) {
      arrived_.store(0, std::memory_order_relaxed);
      finish_epoch();
      gen_.store(my_gen + 1, std::memory_order_release);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    while (gen_.load(std::memory_order_acquire) == my_gen) {
      std::this_thread::yield();
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    barrier_wait_ns_.add(static_cast<std::uint64_t>(ns));
  }

  /// Replays every queued access in canonical (socket, thread, issue)
  /// order — the epoch's one global serialization point for shared
  /// state. Runs single-threaded (last arriver, or the serial twin's
  /// only thread) with every worker parked, so it may freely touch any
  /// thread's clock and sample buffer. The accumulated resolved latency
  /// lands on the issuing thread's clock as one bump (issue time charged
  /// nothing), and the stack snapshot is presented via replay so sampled
  /// deferred accesses attribute to the calling context they issued in.
  void finish_epoch() {
    epochs_.inc();
    if (aborted_.load(std::memory_order_relaxed)) {
      clear_queues();
      return;
    }
    try {
      for (const std::vector<int>& group : groups_) {
        for (const int w : group) {
          Queue& q = queues_[static_cast<std::size_t>(w)];
          if (q.recs.empty()) continue;
          ThreadCtx& ctx = team_->thread(w);
          Cycles extra = 0;
          for (const DeferredRec& rec : q.recs) {
            ctx.begin_stack_replay(std::span<const Addr>(
                q.arena.data() + rec.stack_off, rec.stack_len));
            const sim::AccessResult r = machine_->resolve_deferred(rec.d);
            extra += r.latency;
          }
          ctx.end_stack_replay();
          ctx.set_clock(ctx.clock() + extra);
          deferred_cycles_.add(extra);
          q.recs.clear();
          q.arena.clear();
        }
      }
    } catch (...) {
      record_error();
      clear_queues();
    }
  }

  void clear_queues() {
    for (Queue& q : queues_) {
      q.recs.clear();
      q.arena.clear();
    }
  }

  void record_error() {
    std::lock_guard lock(mu_);
    if (!error_) error_ = std::current_exception();
    aborted_.store(true, std::memory_order_relaxed);
  }

  bool serial_ = false;
  std::uint32_t epoch_rounds_ = 8;
  bool grouped_ = false;
  Team* team_ = nullptr;
  sim::Machine* machine_ = nullptr;
  std::vector<std::vector<int>> groups_;  ///< socket -> ascending tids
  std::vector<Queue> queues_;             ///< per team thread

  std::vector<std::thread> workers_;  ///< one per socket group
  std::mutex mu_;
  std::condition_variable cv_;       ///< task published / stop
  std::condition_variable done_cv_;  ///< all workers finished a task
  std::uint64_t task_gen_ = 0;       ///< task generation (guarded by mu_)
  int active_ = 0;                   ///< workers still on the task
  bool stop_ = false;
  Task task_;
  std::exception_ptr error_;  ///< first body exception (guarded by mu_)
  std::atomic<bool> aborted_{false};

  std::atomic<std::uint32_t> arrived_{0};  ///< epoch-barrier arrivals
  std::atomic<std::uint64_t> gen_{0};      ///< epoch generation

  obs::Counter epochs_;
  obs::Counter deferred_remote_;
  obs::Counter deferred_first_touch_;
  obs::Counter deferred_cycles_;
  obs::Counter barrier_wait_ns_;
};

}  // namespace

std::unique_ptr<ExecBackend> make_backend(const ExecConfig& cfg) {
  if (cfg.backend == BackendKind::kThreaded) {
    return std::make_unique<ThreadedBackend>();
  }
  if (cfg.backend == BackendKind::kSharded) {
    return std::make_unique<ShardedBackend>(cfg);
  }
  return std::make_unique<DeterministicBackend>();
}

}  // namespace dcprof::rt
