#include "rt/alloc.h"

#include <algorithm>
#include <limits>
#include <new>
#include <stdexcept>

namespace dcprof::rt {

namespace {
// Bookkeeping cost of one allocator call (free-list search etc.).
constexpr std::uint64_t kAllocatorInstrs = 60;

// The allocator moves page-table policy state (set_policy, release_range,
// the interleave cursor) — shared, order-dependent structures the
// epoch-sharded backend only mutates at its barriers. Workloads therefore
// must not allocate inside a sharded parallel construct; they allocate in
// setup() / Team::single() instead, where no defer sink is installed.
void require_quiescent(const sim::Machine& machine) {
  if (machine.deferring()) {
    throw std::logic_error(
        "rt::Allocator: allocation inside an epoch-sharded parallel "
        "construct (allocate in setup or Team::single instead)");
  }
}
}  // namespace

sim::PlacementPolicy Allocator::resolve(AllocPolicy policy) const {
  switch (policy) {
    case AllocPolicy::kDefault:
      return global_interleave_ ? sim::PlacementPolicy::kInterleave
                                : sim::PlacementPolicy::kFirstTouch;
    case AllocPolicy::kFirstTouch:
      return sim::PlacementPolicy::kFirstTouch;
    case AllocPolicy::kInterleave:
      return sim::PlacementPolicy::kInterleave;
    case AllocPolicy::kOnNode:
      return sim::PlacementPolicy::kFixed;
  }
  return sim::PlacementPolicy::kFirstTouch;
}

void Allocator::touch_pages(ThreadCtx& ctx, sim::Addr base,
                            std::uint64_t size, sim::Addr ip) {
  // Zeroing writes the whole block; we issue one store per page (enough
  // to trigger placement) and charge compute for the rest of the bytes.
  const std::uint64_t page = machine_->config().page_bytes;
  for (sim::Addr a = base; a < base + size; a += page) {
    ctx.store(a, 8, ip);
  }
  ctx.compute(size / 8, ip);
}

sim::Addr Allocator::malloc(ThreadCtx& ctx, std::uint64_t size, sim::Addr ip,
                            AllocPolicy policy, sim::NodeId node) {
  require_quiescent(*machine_);
  ctx.compute(kAllocatorInstrs, ip);
  const sim::Addr base = machine_->aspace().heap_alloc(size);
  machine_->memory().page_table().set_policy(base, size, resolve(policy),
                                             node);
  ++allocations_;
  if (hooks_.on_alloc) hooks_.on_alloc(ctx, base, size, ip);
  return base;
}

sim::Addr Allocator::calloc(ThreadCtx& ctx, std::uint64_t count,
                            std::uint64_t elem, sim::Addr ip,
                            AllocPolicy policy, sim::NodeId node) {
  if (elem != 0 && count > std::numeric_limits<std::uint64_t>::max() / elem) {
    throw std::bad_alloc();  // count * elem overflows, as real calloc checks
  }
  const std::uint64_t size = count * elem;
  const sim::Addr base = malloc(ctx, size, ip, policy, node);
  touch_pages(ctx, base, size, ip);
  return base;
}

sim::Addr Allocator::realloc(ThreadCtx& ctx, sim::Addr old_addr,
                             std::uint64_t new_size, sim::Addr ip,
                             AllocPolicy policy) {
  if (old_addr == 0) return malloc(ctx, new_size, ip, policy);
  const auto old_size = machine_->aspace().block_size(old_addr);
  const sim::Addr base = malloc(ctx, new_size, ip, policy);
  if (old_size) {
    const std::uint64_t copied = std::min(*old_size, new_size);
    touch_pages(ctx, base, copied, ip);  // the copy touches the new block
    ctx.compute(copied / 8, ip);
  }
  free(ctx, old_addr);
  return base;
}

void Allocator::free(ThreadCtx& ctx, sim::Addr addr) {
  if (addr == 0) return;
  require_quiescent(*machine_);
  ctx.compute(kAllocatorInstrs, 0);
  const auto size = machine_->aspace().block_size(addr);
  if (hooks_.on_free && size) hooks_.on_free(ctx, addr, *size);
  const std::uint64_t freed = machine_->aspace().heap_free(addr);
  // Unmap the pages so a reused range is re-placed by its next owner.
  machine_->memory().page_table().release_range(addr, freed);
  ++frees_;
}

}  // namespace dcprof::rt
