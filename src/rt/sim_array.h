// Typed array views pairing real host storage (so workloads compute real
// values that tests can verify) with a simulated address range (so every
// element access drives the machine model and is observable by the PMU).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "binfmt/load_module.h"
#include "rt/alloc.h"
#include "rt/thread.h"

namespace dcprof::rt {

/// A heap-allocated array. `get`/`set` issue simulated accesses and read/
/// write the backing host storage; `host` bypasses the simulation (for
/// verification and setup that should not be measured).
template <typename T>
class SimArray {
 public:
  SimArray() = default;

  /// malloc semantics: pages placed lazily by first touch (or `policy`).
  static SimArray malloc_in(Allocator& alloc, ThreadCtx& ctx,
                            std::uint64_t count, sim::Addr ip,
                            AllocPolicy policy = AllocPolicy::kDefault,
                            sim::NodeId node = sim::kNoNode) {
    SimArray a;
    a.base_ = alloc.malloc(ctx, count * sizeof(T), ip, policy, node);
    a.data_.assign(count, T{});
    return a;
  }

  /// calloc semantics: the calling thread touches (zeroes) all pages now.
  static SimArray calloc_in(Allocator& alloc, ThreadCtx& ctx,
                            std::uint64_t count, sim::Addr ip,
                            AllocPolicy policy = AllocPolicy::kDefault,
                            sim::NodeId node = sim::kNoNode) {
    SimArray a;
    a.base_ = alloc.calloc(ctx, count, sizeof(T), ip, policy, node);
    a.data_.assign(count, T{});
    return a;
  }

  void free_in(Allocator& alloc, ThreadCtx& ctx) {
    if (base_ != 0) {
      alloc.free(ctx, base_);
      base_ = 0;
      data_.clear();
    }
  }

  T get(ThreadCtx& ctx, std::uint64_t i, sim::Addr ip) const {
    ctx.load(addr(i), sizeof(T), ip);
    return data_[i];
  }
  void set(ThreadCtx& ctx, std::uint64_t i, T value, sim::Addr ip) {
    ctx.store(addr(i), sizeof(T), ip);
    data_[i] = value;
  }

  /// Unsimulated access to the backing storage.
  T& host(std::uint64_t i) { return data_[i]; }
  const T& host(std::uint64_t i) const { return data_[i]; }

  sim::Addr addr(std::uint64_t i) const {
    return base_ + i * sizeof(T);
  }
  sim::Addr base() const { return base_; }
  std::uint64_t size() const { return data_.size(); }
  bool allocated() const { return base_ != 0; }

 private:
  sim::Addr base_ = 0;
  std::vector<T> data_;
};

/// A stack-resident array: bump-allocated from the owning thread's stack
/// segment (released on destruction, LIFO). The profiler attributes its
/// accesses to "stack (thread N)" — the paper's future-work extension.
template <typename T>
class StackArray {
 public:
  StackArray(ThreadCtx& ctx, std::uint64_t count)
      : ctx_(&ctx), base_(ctx.stack_alloc(count * sizeof(T))),
        data_(count, T{}) {}
  ~StackArray() {
    ctx_->stack_release(data_.size() * sizeof(T));
  }
  StackArray(const StackArray&) = delete;
  StackArray& operator=(const StackArray&) = delete;

  T get(ThreadCtx& ctx, std::uint64_t i, sim::Addr ip) const {
    ctx.load(addr(i), sizeof(T), ip);
    return data_[i];
  }
  void set(ThreadCtx& ctx, std::uint64_t i, T value, sim::Addr ip) {
    ctx.store(addr(i), sizeof(T), ip);
    data_[i] = value;
  }

  T& host(std::uint64_t i) { return data_[i]; }
  sim::Addr addr(std::uint64_t i) const { return base_ + i * sizeof(T); }
  std::uint64_t size() const { return data_.size(); }

 private:
  ThreadCtx* ctx_;
  sim::Addr base_;
  std::vector<T> data_;
};

/// A static (load-module .bss) array: registered in the module's symbol
/// table so the profiler attributes accesses to the variable by name.
template <typename T>
class StaticArray {
 public:
  StaticArray() = default;

  StaticArray(binfmt::LoadModule& module, const std::string& name,
              std::uint64_t count)
      : base_(module.add_static_var(name, count * sizeof(T))),
        data_(count, T{}) {}

  T get(ThreadCtx& ctx, std::uint64_t i, sim::Addr ip) const {
    ctx.load(addr(i), sizeof(T), ip);
    return data_[i];
  }
  void set(ThreadCtx& ctx, std::uint64_t i, T value, sim::Addr ip) {
    ctx.store(addr(i), sizeof(T), ip);
    data_[i] = value;
  }

  T& host(std::uint64_t i) { return data_[i]; }
  const T& host(std::uint64_t i) const { return data_[i]; }

  sim::Addr addr(std::uint64_t i) const { return base_ + i * sizeof(T); }
  sim::Addr base() const { return base_; }
  std::uint64_t size() const { return data_.size(); }

 private:
  sim::Addr base_ = 0;
  std::vector<T> data_;
};

}  // namespace dcprof::rt
