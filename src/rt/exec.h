// Execution backends: how a Team's parallel constructs actually run.
//
// The scheduling *policy* — deterministic round-robin on the calling host
// thread vs. real std::threads — is chosen via ExecConfig instead of
// being baked into Team::parallel_for. Both backends execute the exact
// same per-thread chunks in the exact same global order, so the simulated
// machine (shared L3 content, DRAM queue backlogs, first-touch page
// homes) evolves identically and profiles are canonically equal between
// them: the deterministic backend is the threaded backend's verification
// twin.
//
// ThreadedBackend keeps that global order on real threads with a turn
// token: an atomic slot counter hands machine access to one worker at a
// time in round-robin chunk order (release store when passing, acquire
// load when taking, so all simulation state is chained happens-before and
// needs no locks). The *win* is what happens outside a worker's turn:
// after passing the token it drains its own pending-sample buffer —
// expensive CCT attribution overlaps across workers while another thread
// simulates (see ExecObserver and core::Profiler's deferred ingest).
//
// ShardedBackend goes further and overlaps the *simulation* itself: one
// host worker per simulated socket runs that socket's threads against
// socket-private machine state (L1/L2/TLB/prefetcher, the socket's L3,
// its locally-homed DRAM controllers), with no token at all. Accesses
// that would touch cross-socket shared state — pages homed on another
// socket, or not yet homed (first touch) — are deferred into per-thread
// queues and replayed at deterministic epoch barriers in canonical
// (socket, thread, issue) order, every `epoch_rounds` chunk rounds. Its
// verification twin is the same backend with `sharded_serial = true`:
// the identical epoch schedule run on one host thread, byte-identical
// profiles by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace dcprof::rt {

class Team;
class ThreadCtx;

enum class BackendKind : std::uint8_t {
  kDeterministic,  ///< round-robin virtual threads on the calling thread
  kThreaded,       ///< one std::thread per team thread, turn-serialized
  kSharded,        ///< one std::thread per socket, epoch-barrier resolved
};

const char* to_string(BackendKind kind);
/// Parses "det" / "threads" / "sockets"; nullopt on anything else.
std::optional<BackendKind> parse_backend(std::string_view name);

/// How a Team executes its parallel constructs.
struct ExecConfig {
  BackendKind backend = BackendKind::kDeterministic;
  /// kSharded: chunk rounds per epoch. Longer epochs amortize barriers;
  /// shorter ones bound how stale deferred remote accesses get.
  std::uint32_t epoch_rounds = 8;
  /// kSharded: run the identical epoch schedule on the calling host
  /// thread instead of socket workers — the backend's verification twin
  /// (profiles must match the parallel run byte for byte).
  bool sharded_serial = false;
};

/// Non-owning type-erased loop body: `fn(obj, ctx, i)` runs iteration i.
/// (A function-ref, not std::function — no allocation, the body outlives
/// the call by construction.)
struct ForBodyRef {
  void* obj = nullptr;
  void (*fn)(void*, ThreadCtx&, std::int64_t) = nullptr;
  void operator()(ThreadCtx& ctx, std::int64_t i) const { fn(obj, ctx, i); }
};

/// Non-owning type-erased parallel-region body: `fn(obj, ctx)`.
struct RegionBodyRef {
  void* obj = nullptr;
  void (*fn)(void*, ThreadCtx&) = nullptr;
  void operator()(ThreadCtx& ctx) const { fn(obj, ctx); }
};

/// Hooks a sample consumer (the profiler) implements to learn about safe
/// drain points in a *concurrent* backend. Never invoked by the
/// deterministic backend (samples are attributed synchronously there).
class ExecObserver {
 public:
  virtual ~ExecObserver() = default;
  /// Called on the worker's own host thread right after it passed the
  /// turn token: the thread is outside the serialized section, so
  /// draining ITS OWN per-thread sample buffer overlaps with the next
  /// worker's simulation.
  virtual void on_slice_retired(ThreadCtx& ctx) = 0;
  /// Called on the controlling thread once all workers are parked (end
  /// of a parallel construct, or a single/barrier epoch boundary): flush
  /// every remaining buffer and consume the handoff rings.
  virtual void on_quiescent(Team& team) = 0;
};

class ExecBackend {
 public:
  virtual ~ExecBackend() = default;
  /// True when team threads run on real host threads (samples must be
  /// buffered per thread and drained at the observer's hook points).
  virtual bool concurrent() const = 0;
  virtual void run_for(Team& team, std::int64_t begin, std::int64_t end,
                       std::int64_t chunk, ForBodyRef body) = 0;
  virtual void run_region(Team& team, RegionBodyRef body) = 0;
};

std::unique_ptr<ExecBackend> make_backend(const ExecConfig& cfg);

}  // namespace dcprof::rt
