// An OpenMP-like team of virtual threads. Parallel constructs execute
// through a pluggable ExecBackend (rt/exec.h): the default deterministic
// backend interleaves one chunk per thread per round on the calling host
// thread — which is what lets the simulation reproduce shared-L3 and
// DRAM-controller contention between worker threads — while the threaded
// backend runs each team thread on a real std::thread, turn-serialized
// into the identical global chunk order (so both backends produce
// identical simulation results; the deterministic one is the threaded
// one's verification twin).
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "rt/exec.h"
#include "rt/thread.h"
#include "sim/machine.h"

namespace dcprof::rt {

class Team {
 public:
  /// Creates `nthreads` virtual threads on `machine`, assigned to cores
  /// round-robin (SMT-style oversubscription allowed, as on POWER7).
  /// `exec` picks the execution backend (deterministic by default).
  Team(sim::Machine& machine, int nthreads, ExecConfig exec = {});
  ~Team();
  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }
  ThreadCtx& thread(int t) { return *threads_[static_cast<std::size_t>(t)]; }
  ThreadCtx& master() { return *threads_[0]; }

  const ExecConfig& exec_config() const { return exec_cfg_; }
  /// True when team threads run on real host threads.
  bool concurrent() const { return exec_->concurrent(); }

  /// At most one observer (the profiler's deferred-ingest hooks); only
  /// consulted by concurrent backends. Set before running constructs.
  void set_exec_observer(ExecObserver* observer) { observer_ = observer; }
  ExecObserver* exec_observer() const { return observer_; }

  /// Synchronizes all thread clocks to the team maximum (a barrier).
  void barrier();

  /// Team wall-clock: the maximum thread clock.
  Cycles now() const;

  /// OpenMP-style static-scheduled parallel for over [begin, end).
  /// Each thread owns a contiguous block; execution interleaves one
  /// `chunk`-iteration slice per thread, round-robin, and ends with a
  /// barrier. `body(ThreadCtx&, i)` runs each iteration.
  template <typename Body>
  void parallel_for(std::int64_t begin, std::int64_t end, Body&& body,
                    std::int64_t chunk = 16) {
    using B = std::remove_reference_t<Body>;
    ForBodyRef ref{const_cast<void*>(static_cast<const void*>(&body)),
                   [](void* obj, ThreadCtx& ctx, std::int64_t i) {
                     (*static_cast<B*>(obj))(ctx, i);
                   }};
    exec_->run_for(*this, begin, end, chunk, ref);
  }

  /// Runs `body(ThreadCtx&)` once per thread (like an OpenMP parallel
  /// region with thread-id dispatch); threads execute their body to
  /// completion in tid order, then barrier.
  template <typename Body>
  void parallel_region(Body&& body) {
    using B = std::remove_reference_t<Body>;
    RegionBodyRef ref{const_cast<void*>(static_cast<const void*>(&body)),
                      [](void* obj, ThreadCtx& ctx) {
                        (*static_cast<B*>(obj))(ctx);
                      }};
    exec_->run_region(*this, ref);
  }

  /// Runs `body` on the master thread only (like `#pragma omp master`
  /// followed by a barrier). An epoch boundary for deferred ingest: the
  /// observer's quiescent hook fires so master-side samples flush.
  template <typename Body>
  void single(Body&& body) {
    barrier();
    body(master());
    quiesce();
    barrier();
  }

  /// Fires the observer's quiescent hook when a concurrent backend is
  /// active (workers are parked between constructs, so the calling
  /// thread may flush every per-thread buffer). No-op otherwise.
  void quiesce() {
    if (observer_ != nullptr && exec_->concurrent()) {
      observer_->on_quiescent(*this);
    }
  }

 private:
  std::vector<std::unique_ptr<ThreadCtx>> threads_;
  ExecConfig exec_cfg_;
  std::unique_ptr<ExecBackend> exec_;
  ExecObserver* observer_ = nullptr;
};

/// RAII frame pushed on *every* team thread: models workers executing an
/// outlined parallel-region function within the enclosing calling context
/// (so worker samples carry the full call path, as in the paper's GUI).
class TeamScope {
 public:
  TeamScope(Team& team, Addr call_site_ip) : team_(&team) {
    for (int t = 0; t < team_->size(); ++t) {
      team_->thread(t).push_frame(call_site_ip);
    }
  }
  ~TeamScope() {
    for (int t = 0; t < team_->size(); ++t) {
      team_->thread(t).pop_frame();
    }
  }
  TeamScope(const TeamScope&) = delete;
  TeamScope& operator=(const TeamScope&) = delete;

 private:
  Team* team_;
};

}  // namespace dcprof::rt
