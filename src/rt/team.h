// An OpenMP-like team of virtual threads with deterministic round-robin
// interleaved execution of parallel loops. Interleaving at chunk
// granularity is what lets the (single real thread) simulation reproduce
// shared-L3 and DRAM-controller contention between worker threads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rt/thread.h"
#include "sim/machine.h"

namespace dcprof::rt {

class Team {
 public:
  /// Creates `nthreads` virtual threads on `machine`, assigned to cores
  /// round-robin (SMT-style oversubscription allowed, as on POWER7).
  Team(sim::Machine& machine, int nthreads);

  int size() const { return static_cast<int>(threads_.size()); }
  ThreadCtx& thread(int t) { return *threads_[static_cast<std::size_t>(t)]; }
  ThreadCtx& master() { return *threads_[0]; }

  /// Synchronizes all thread clocks to the team maximum (a barrier).
  void barrier();

  /// Team wall-clock: the maximum thread clock.
  Cycles now() const;

  /// OpenMP-style static-scheduled parallel for over [begin, end).
  /// Each thread owns a contiguous block; execution interleaves one
  /// `chunk`-iteration slice per thread, round-robin, and ends with a
  /// barrier. `body(ThreadCtx&, i)` runs each iteration.
  template <typename Body>
  void parallel_for(std::int64_t begin, std::int64_t end, Body&& body,
                    std::int64_t chunk = 16) {
    barrier();
    const std::int64_t len = end - begin;
    if (len <= 0) return;
    const auto nt = static_cast<std::int64_t>(threads_.size());
    const std::int64_t per = (len + nt - 1) / nt;
    struct Range {
      std::int64_t next;
      std::int64_t end;
    };
    std::vector<Range> ranges;
    ranges.reserve(static_cast<std::size_t>(nt));
    for (std::int64_t t = 0; t < nt; ++t) {
      const std::int64_t lo = begin + t * per;
      const std::int64_t hi = lo + per < end ? lo + per : end;
      ranges.push_back(Range{lo, hi > lo ? hi : lo});
    }
    bool any = true;
    while (any) {
      any = false;
      for (std::int64_t t = 0; t < nt; ++t) {
        auto& r = ranges[static_cast<std::size_t>(t)];
        if (r.next >= r.end) continue;
        any = true;
        ThreadCtx& ctx = *threads_[static_cast<std::size_t>(t)];
        const std::int64_t stop =
            r.next + chunk < r.end ? r.next + chunk : r.end;
        for (std::int64_t i = r.next; i < stop; ++i) body(ctx, i);
        r.next = stop;
      }
    }
    barrier();
  }

  /// Runs `body(ThreadCtx&)` once per thread (like an OpenMP parallel
  /// region with thread-id dispatch); threads execute their body to
  /// completion in tid order, then barrier.
  template <typename Body>
  void parallel_region(Body&& body) {
    barrier();
    for (auto& t : threads_) body(*t);
    barrier();
  }

  /// Runs `body` on the master thread only (like `#pragma omp master`
  /// followed by a barrier).
  template <typename Body>
  void single(Body&& body) {
    barrier();
    body(master());
    barrier();
  }

 private:
  std::vector<std::unique_ptr<ThreadCtx>> threads_;
};

/// RAII frame pushed on *every* team thread: models workers executing an
/// outlined parallel-region function within the enclosing calling context
/// (so worker samples carry the full call path, as in the paper's GUI).
class TeamScope {
 public:
  TeamScope(Team& team, Addr call_site_ip) : team_(&team) {
    for (int t = 0; t < team_->size(); ++t) {
      team_->thread(t).push_frame(call_site_ip);
    }
  }
  ~TeamScope() {
    for (int t = 0; t < team_->size(); ++t) {
      team_->thread(t).pop_frame();
    }
  }
  TeamScope(const TeamScope&) = delete;
  TeamScope& operator=(const TeamScope&) = delete;

 private:
  Team* team_;
};

}  // namespace dcprof::rt
