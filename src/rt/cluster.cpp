#include "rt/cluster.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

namespace dcprof::rt {

Rank::Rank(Cluster& cluster, int rank, const sim::MachineConfig& cfg,
           int threads, ExecConfig exec)
    : cluster_(&cluster), rank_(rank), machine_(cfg),
      team_(machine_, threads, exec), alloc_(machine_) {}

int Rank::nranks() const { return cluster_->nranks(); }

void Rank::send(int dst, int tag, const void* data, std::uint64_t bytes) {
  ThreadCtx& ctx = comm_ctx();
  ctx.set_clock(ctx.clock() + cluster_->cost_.alpha);
  cluster_->post(rank_, dst, tag, data, bytes, ctx.clock());
}

void Rank::recv(int src, int tag, void* data, std::uint64_t bytes) {
  Cluster::Message msg = cluster_->take(src, rank_, tag);
  if (msg.data.size() != bytes) {
    throw std::length_error("recv: message size mismatch");
  }
  if (bytes > 0) std::memcpy(data, msg.data.data(), bytes);
  ThreadCtx& ctx = comm_ctx();
  const Cycles arrival = msg.sent_at + cluster_->cost_.transfer(bytes);
  ctx.set_clock(std::max(ctx.clock(), arrival));
}

double Rank::allreduce_sum(double value) {
  return cluster_->collective(*this, Cluster::CollectiveOp::kSum, value);
}

double Rank::allreduce_max(double value) {
  return cluster_->collective(*this, Cluster::CollectiveOp::kMax, value);
}

void Rank::barrier() {
  cluster_->collective(*this, Cluster::CollectiveOp::kBarrier, 0.0);
}

void Cluster::Completion::operator()() noexcept {
  Cycles max_clock = 0;
  double sum = 0;
  double maxv = cluster->value_slot_.empty() ? 0 : cluster->value_slot_[0];
  for (std::size_t r = 0; r < cluster->clock_slot_.size(); ++r) {
    max_clock = std::max(max_clock, cluster->clock_slot_[r]);
    sum += cluster->value_slot_[r];
    maxv = std::max(maxv, cluster->value_slot_[r]);
  }
  cluster->result_clock_ = max_clock;
  cluster->result_sum_ = sum;
  cluster->result_max_ = maxv;
}

Cluster::Cluster(int nranks, const sim::MachineConfig& cfg,
                 int threads_per_rank, ExecConfig exec) {
  if (nranks <= 0) throw std::invalid_argument("cluster needs >= 1 rank");
  clock_slot_.assign(static_cast<std::size_t>(nranks), 0);
  value_slot_.assign(static_cast<std::size_t>(nranks), 0.0);
  rendezvous_ = std::make_unique<std::barrier<Completion>>(
      nranks, Completion{this});
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(
        std::make_unique<Rank>(*this, r, cfg, threads_per_rank, exec));
  }
}

Cluster::~Cluster() = default;

void Cluster::post(int src, int dst, int tag, const void* data,
                   std::uint64_t bytes, Cycles sent_at) {
  Message msg;
  msg.data.resize(bytes);
  if (bytes > 0) std::memcpy(msg.data.data(), data, bytes);
  msg.sent_at = sent_at;
  {
    std::lock_guard lock(queue_mu_);
    queues_[Key{src, dst, tag}].push_back(std::move(msg));
  }
  queue_cv_.notify_all();
}

Cluster::Message Cluster::take(int src, int dst, int tag) {
  std::unique_lock lock(queue_mu_);
  const Key key{src, dst, tag};
  queue_cv_.wait(lock, [&] {
    auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  });
  auto& q = queues_[key];
  Message msg = std::move(q.front());
  q.pop_front();
  return msg;
}

double Cluster::collective(Rank& rank, CollectiveOp op, double value) {
  // The rank's team is quiesced to a single clock before synchronizing.
  rank.team().barrier();
  const auto r = static_cast<std::size_t>(rank.id());
  clock_slot_[r] = rank.team().now();
  value_slot_[r] = value;
  rendezvous_->arrive_and_wait();
  const int stages = std::bit_width(static_cast<unsigned>(nranks() - 1));
  const Cycles after =
      result_clock_ + cost_.alpha * static_cast<Cycles>(stages);
  for (int t = 0; t < rank.team().size(); ++t) {
    rank.team().thread(t).set_clock(after);
  }
  switch (op) {
    case CollectiveOp::kSum: return result_sum_;
    case CollectiveOp::kMax: return result_max_;
    case CollectiveOp::kBarrier: return 0.0;
  }
  return 0.0;
}

void Cluster::run(const std::function<void(Rank&)>& body) {
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mu;
  threads.reserve(ranks_.size());
  for (auto& rank : ranks_) {
    threads.emplace_back([&, rank_ptr = rank.get()] {
      try {
        body(*rank_ptr);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dcprof::rt
