// Self-telemetry metrics registry: named, labeled counters, gauges, and
// histograms describing the profiler's *own* behaviour (the paper's
// Table 1 overhead story, made continuously observable).
//
// Hot-path contract:
//  * Counter and Histogram handles may be written from multiple threads:
//    `add`/`record` are relaxed atomic RMWs (a lock-prefixed add, no
//    ordering). Each handle still owns a private cache-line-padded cell,
//    so the RMW is uncontended unless a handle is deliberately shared;
//    threads wanting a hot same-series counter should each create their
//    own handle (snapshots sum across cells) — the profiler's deferred
//    ingest goes further and tallies per-thread in plain memory, folding
//    into its cells at quiescent points.
//  * Gauge handles may be shared across threads: `add`/`set` use real
//    atomic RMW (they sit on cold or per-batch paths, e.g. pipeline
//    queue occupancy), and each cell tracks its high-water mark.
//  * Series creation is mutex-guarded (cold); cells are pointer-stable
//    for the registry's lifetime, so a handle may outlive the component
//    that created it and destroyed handles leave their totals behind.
//
// Telemetry never touches profile content: every metric is a side
// counter, so serialized profiles are byte-identical with telemetry on
// or off (tests/test_obs.cpp proves it end to end).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dcprof::obs {

/// Gates the telemetry that costs more than a counter bump (wall-clock
/// reads feeding latency histograms and the overhead accountant).
/// Default off: the measurement hot path then pays one relaxed load and
/// a predictable branch per gated site.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// Sorted key=value pairs identifying one series of a metric family.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

namespace detail {

/// One counter/histogram/gauge value slot (multi-writer safe).
/// Padded so two handles never false-share.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
  std::atomic<std::uint64_t> max{0};  ///< gauges: high-water mark
};

/// Histograms use power-of-two buckets: bucket i counts values v with
/// bit_width(v) == i (i.e. v in [2^(i-1), 2^i)), clamped to the last
/// bucket. 0 lands in bucket 0.
inline constexpr std::size_t kHistBuckets = 40;

struct alignas(64) HistCells {
  std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> count{0};
};

struct Series;

}  // namespace detail

/// Monotonic counter handle (multi-writer safe; move-only).
class Counter {
 public:
  Counter();  ///< bound to a process-wide scratch cell (writes discarded)
  Counter(Counter&&) = default;
  Counter& operator=(Counter&&) = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n) {
    // Relaxed RMW: exact under concurrent writers (drain-time bumps from
    // worker threads), uncontended-cheap when the handle stays private.
    cell_->value.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::uint64_t value() const {
    return cell_->value.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Counter(detail::Cell* cell) : cell_(cell) {}
  detail::Cell* cell_;
};

/// Gauge handle (sharable across threads; add/set are atomic RMW).
class Gauge {
 public:
  Gauge();
  Gauge(Gauge&&) = default;
  Gauge& operator=(Gauge&&) = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::uint64_t v) {
    cell_->value.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  /// Signed adjustment (queue occupancy style). Underflow is the
  /// caller's bug, as with any unsigned counter.
  void add(std::int64_t delta) {
    const std::uint64_t now =
        cell_->value.fetch_add(static_cast<std::uint64_t>(delta),
                               std::memory_order_relaxed) +
        static_cast<std::uint64_t>(delta);
    if (delta > 0) raise_max(now);
  }
  std::uint64_t value() const {
    return cell_->value.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const {
    return cell_->max.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(detail::Cell* cell) : cell_(cell) {}
  void raise_max(std::uint64_t v) {
    std::uint64_t cur = cell_->max.load(std::memory_order_relaxed);
    while (v > cur && !cell_->max.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  detail::Cell* cell_;
};

/// Power-of-two-bucket histogram handle (multi-writer safe; move-only).
class Histogram {
 public:
  Histogram();
  Histogram(Histogram&&) = default;
  Histogram& operator=(Histogram&&) = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v);
  std::uint64_t count() const {
    return cells_->count.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const {
    return cells_->sum.load(std::memory_order_relaxed);
  }

  /// Bucket index for a value (bit_width clamped to the bucket count).
  static std::size_t bucket_of(std::uint64_t v);
  /// Exclusive upper bound of bucket i (2^i; ~0 for the last bucket).
  static std::uint64_t bucket_limit(std::size_t i);

 private:
  friend class Registry;
  explicit Histogram(detail::HistCells* cells) : cells_(cells) {}
  detail::HistCells* cells_;
};

/// One series' aggregated state at snapshot time.
struct SnapshotEntry {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counter/gauge total (gauge: sum of cells)
  std::uint64_t max = 0;    ///< gauges: high-water across cells
  // Histograms only:
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;  ///< (le, n)

  /// "name" or "name{k=v,...}" — the stable series key.
  std::string key() const;
};

/// A deterministic point-in-time view: entries sorted by series key.
struct Snapshot {
  std::vector<SnapshotEntry> entries;

  const SnapshotEntry* find(const std::string& key) const;
  /// Value of a counter/gauge series, 0 if absent.
  std::uint64_t value(const std::string& key) const;
};

/// Renders a snapshot as a stable JSON document:
/// {"counters":{key:n,...},"gauges":{key:{"value":n,"max":m},...},
///  "histograms":{key:{"count":n,"sum":s,"buckets":[[le,n],...]},...}}
std::string to_json(const Snapshot& snap);

class Registry {
 public:
  // Out-of-line: Series is incomplete here.
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every dcprof component reports into.
  static Registry& global();

  /// Creates a new single-writer handle on the (name, labels) series.
  /// Repeated calls return distinct cells that sum at snapshot time.
  Counter counter(const std::string& name, Labels labels = {});
  Gauge gauge(const std::string& name, Labels labels = {});
  Histogram histogram(const std::string& name, Labels labels = {});

  Snapshot snapshot() const;

  /// Drops every series (testing only — outstanding handles must not be
  /// used afterwards).
  void reset_for_testing();

 private:
  detail::Series& series(const std::string& name, Labels labels,
                         MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<detail::Series>> series_;
};

/// Accumulates elapsed wall-clock nanoseconds into a counter, but only
/// when `metrics_enabled()` — the disabled cost is one load + branch.
class ScopedNs {
 public:
  explicit ScopedNs(Counter& ns_counter);
  ~ScopedNs();
  ScopedNs(const ScopedNs&) = delete;
  ScopedNs& operator=(const ScopedNs&) = delete;

 private:
  Counter* counter_;
  std::uint64_t t0_ = 0;
};

}  // namespace dcprof::obs
