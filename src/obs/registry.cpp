#include "obs/registry.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

namespace dcprof::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Default-constructed handles write here; the values are never read.
detail::Cell& scratch_cell() {
  static detail::Cell cell;
  return cell;
}

detail::HistCells& scratch_hist() {
  static detail::HistCells cells;
  return cells;
}

std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace detail {

/// One (name, labels, kind) series and every cell handed out for it.
/// Deques keep cells pointer-stable as handles are created.
struct Series {
  std::string name;
  Labels labels;
  MetricKind kind;
  std::deque<Cell> cells;
  std::deque<HistCells> hists;
};

}  // namespace detail

Counter::Counter() : cell_(&scratch_cell()) {}
Gauge::Gauge() : cell_(&scratch_cell()) {}
Histogram::Histogram() : cells_(&scratch_hist()) {}

std::size_t Histogram::bucket_of(std::uint64_t v) {
  return std::min<std::size_t>(std::bit_width(v),
                               detail::kHistBuckets - 1);
}

std::uint64_t Histogram::bucket_limit(std::size_t i) {
  if (i >= detail::kHistBuckets - 1) return ~0ull;
  return 1ull << i;
}

void Histogram::record(std::uint64_t v) {
  // Relaxed RMWs: exact under concurrent writers (see the hot-path
  // contract in registry.h).
  cells_->buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  cells_->sum.fetch_add(v, std::memory_order_relaxed);
  cells_->count.fetch_add(1, std::memory_order_relaxed);
}

std::string SnapshotEntry::key() const { return series_key(name, labels); }

const SnapshotEntry* Snapshot::find(const std::string& key) const {
  for (const auto& e : entries) {
    if (e.key() == key) return &e;
  }
  return nullptr;
}

std::uint64_t Snapshot::value(const std::string& key) const {
  const SnapshotEntry* e = find(key);
  return e == nullptr ? 0 : e->value;
}

Registry::Registry() = default;
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* reg = new Registry;  // immortal: handles may outlive exit
  return *reg;
}

detail::Series& Registry::series(const std::string& name, Labels labels,
                                 MetricKind kind) {
  std::sort(labels.begin(), labels.end());
  const std::string key = series_key(name, labels);
  std::lock_guard lock(mu_);
  auto it = series_.find(key);
  if (it == series_.end()) {
    auto s = std::make_unique<detail::Series>();
    s->name = name;
    s->labels = std::move(labels);
    s->kind = kind;
    it = series_.emplace(key, std::move(s)).first;
  }
  return *it->second;
}

Counter Registry::counter(const std::string& name, Labels labels) {
  detail::Series& s = series(name, std::move(labels), MetricKind::kCounter);
  std::lock_guard lock(mu_);
  return Counter(&s.cells.emplace_back());
}

Gauge Registry::gauge(const std::string& name, Labels labels) {
  detail::Series& s = series(name, std::move(labels), MetricKind::kGauge);
  std::lock_guard lock(mu_);
  return Gauge(&s.cells.emplace_back());
}

Histogram Registry::histogram(const std::string& name, Labels labels) {
  detail::Series& s =
      series(name, std::move(labels), MetricKind::kHistogram);
  std::lock_guard lock(mu_);
  return Histogram(&s.hists.emplace_back());
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard lock(mu_);
  for (const auto& [key, s] : series_) {
    SnapshotEntry e;
    e.name = s->name;
    e.labels = s->labels;
    e.kind = s->kind;
    if (s->kind == MetricKind::kHistogram) {
      std::array<std::uint64_t, detail::kHistBuckets> buckets{};
      for (const auto& h : s->hists) {
        for (std::size_t i = 0; i < buckets.size(); ++i) {
          buckets[i] += h.buckets[i].load(std::memory_order_relaxed);
        }
        e.sum += h.sum.load(std::memory_order_relaxed);
        e.count += h.count.load(std::memory_order_relaxed);
      }
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] != 0) {
          e.buckets.emplace_back(Histogram::bucket_limit(i), buckets[i]);
        }
      }
    } else {
      for (const auto& c : s->cells) {
        e.value += c.value.load(std::memory_order_relaxed);
        e.max = std::max(e.max, c.max.load(std::memory_order_relaxed));
      }
    }
    snap.entries.push_back(std::move(e));
  }
  // series_ is a std::map keyed by the series key, so entries are
  // already deterministically sorted.
  return snap;
}

void Registry::reset_for_testing() {
  std::lock_guard lock(mu_);
  series_.clear();
}

std::string to_json(const Snapshot& snap) {
  std::string counters, gauges, hists;
  for (const auto& e : snap.entries) {
    std::string* out = nullptr;
    std::string body;
    switch (e.kind) {
      case MetricKind::kCounter:
        out = &counters;
        body = std::to_string(e.value);
        break;
      case MetricKind::kGauge:
        out = &gauges;
        body = "{\"value\":" + std::to_string(e.value) +
               ",\"max\":" + std::to_string(e.max) + "}";
        break;
      case MetricKind::kHistogram: {
        out = &hists;
        body = "{\"count\":" + std::to_string(e.count) +
               ",\"sum\":" + std::to_string(e.sum) + ",\"buckets\":[";
        for (std::size_t i = 0; i < e.buckets.size(); ++i) {
          if (i) body += ',';
          body += '[' + std::to_string(e.buckets[i].first) + ',' +
                  std::to_string(e.buckets[i].second) + ']';
        }
        body += "]}";
        break;
      }
    }
    if (!out->empty()) *out += ',';
    append_json_string(*out, e.key());
    *out += ':';
    *out += body;
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + hists + "}}";
}

ScopedNs::ScopedNs(Counter& ns_counter)
    : counter_(metrics_enabled() ? &ns_counter : nullptr) {
  if (counter_ != nullptr) t0_ = now_ns();
}

ScopedNs::~ScopedNs() {
  if (counter_ != nullptr) counter_->add(now_ns() - t0_);
}

}  // namespace dcprof::obs
