// Profiler-overhead accounting: attributes a measured run's wall clock
// and bytes between the simulated workload and the profiler's own work
// (sample handling, allocation tracking, profile write-out), reproducing
// the paper's Table 1 — runtime dilation % and profile size — from live
// telemetry instead of one-off stopwatch experiments.
//
// The inputs are the well-known registry counters the instrumented
// components maintain when `obs::metrics_enabled()`:
//
//   profiler.sample_ns    wall ns inside Profiler::handle_sample
//   tracker.alloc_ns      wall ns inside AllocTracker::on_alloc
//   io.write_ns           wall ns writing the measurement directory
//   io.profile_bytes      bytes of profiles + structure written
//   profiler.samples{outcome=handled}   samples attributed
#pragma once

#include <cstdint>
#include <string>

#include "obs/registry.h"

namespace dcprof::obs {

/// One Table-1-style row: where the run's wall clock and bytes went.
struct OverheadReport {
  double total_wall_ms = 0;       ///< the whole measured run
  double sample_handling_ms = 0;  ///< profiler.sample_ns
  double alloc_tracking_ms = 0;   ///< tracker.alloc_ns
  double writeout_ms = 0;         ///< io.write_ns
  std::uint64_t samples = 0;
  std::uint64_t profile_bytes = 0;

  double profiler_ms() const {
    return sample_handling_ms + alloc_tracking_ms + writeout_ms;
  }
  double workload_ms() const {
    const double w = total_wall_ms - profiler_ms();
    return w > 0 ? w : 0;
  }
  /// Runtime dilation: profiler time over workload-only time (the
  /// paper's "overhead (%)" column).
  double dilation_percent() const {
    return workload_ms() <= 0 ? 0
                              : 100.0 * profiler_ms() / workload_ms();
  }
  double ns_per_sample() const {
    return samples == 0 ? 0 : sample_handling_ms * 1e6 / samples;
  }

  /// Renders the Table-1-style text block.
  std::string to_table(const std::string& workload = "") const;
};

/// Builds a report from a registry snapshot plus the run's total wall
/// clock. Counter deltas are the caller's concern: pass a snapshot taken
/// with a fresh registry/run, or subtract baselines upstream.
OverheadReport account_overhead(const Snapshot& snap, double total_wall_ms);

}  // namespace dcprof::obs
