// Ring-buffered runtime event tracing (LTTng-style: bounded memory,
// per-thread buffers, no locks on the record path), emitted as Chrome
// `trace_event` JSON loadable in Perfetto / chrome://tracing.
//
//   OBS_SPAN("analyze.stream");             // RAII complete ("X") event
//   OBS_SPAN_V("analyze.shard", "shard", w) // span with one u64 arg
//   OBS_INSTANT("analyze.heartbeat");       // instant ("i") event
//
// Cost model:
//  * disabled (default): one relaxed load + branch per site — no clock
//    read, no buffer write. Safe inside the per-sample hot path.
//  * enabled: two steady_clock reads plus one fixed-size ring slot per
//    span. Rings wrap (newest wins) so tracing never allocates after a
//    thread's first event and never grows unbounded; wrapped-over
//    events are counted in `dropped()`.
//
// Event names must be string literals (or otherwise outlive the
// tracer) — the ring stores the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dcprof::obs {

class Tracer {
 public:
  /// The process-wide tracer the OBS_* macros record into.
  static Tracer& global();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Names the calling thread's track in the emitted trace (shown by
  /// Perfetto instead of the numeric tid).
  void set_thread_name(const std::string& name);

  /// Records a complete span on the calling thread's track.
  void record_complete(const char* name, std::uint64_t ts_ns,
                       std::uint64_t dur_ns, const char* arg_name = nullptr,
                       std::uint64_t arg_value = 0);
  /// Records an instant event at now on the calling thread's track.
  void record_instant(const char* name, const char* arg_name = nullptr,
                      std::uint64_t arg_value = 0);

  /// Nanoseconds since this tracer's epoch (construction or reset).
  std::uint64_t now_ns() const;

  /// Ring capacity for threads that have not recorded yet (existing
  /// per-thread rings keep their size).
  void set_capacity_per_thread(std::size_t events);

  /// Events overwritten by ring wraparound, across all threads.
  std::uint64_t dropped() const;
  /// Events currently held, across all threads.
  std::size_t size() const;

  /// Writes the whole trace as Chrome trace_event JSON (object form:
  /// {"traceEvents":[...]}). Call after the traced work quiesces —
  /// concurrent recording into a buffer being written is not synchronized.
  void write_json(std::ostream& out) const;

  /// Clears all buffers and re-arms the epoch. Threads keep their track
  /// registration. Testing / between-run use.
  void reset();

 private:
  struct Event {
    const char* name = nullptr;
    const char* arg_name = nullptr;
    std::uint64_t arg_value = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;  ///< 0 + kInstant phase = instant
    bool instant = false;
  };

  struct ThreadBuf {
    std::vector<Event> ring;
    /// Total ever appended; the ring keeps the newest. Written lock-free
    /// by the owning thread, read under mu_ by dropped()/size()/
    /// write_json — atomic so cross-thread reads of the counter are
    /// well-defined (the release store publishes the slot write).
    std::atomic<std::uint64_t> appended{0};
    std::uint32_t track = 0;
    std::string name;
    void push(const Event& e) {
      const std::uint64_t n = appended.load(std::memory_order_relaxed);
      ring[static_cast<std::size_t>(n % ring.size())] = e;
      appended.store(n + 1, std::memory_order_release);
    }
  };

  ThreadBuf& buf();

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuf>> threads_;
  std::size_t capacity_ = 1 << 16;  ///< events per thread (~3 MB)
  std::uint64_t epoch_ns_ = 0;
};

/// RAII complete-span recorder; zero work when tracing is disabled at
/// construction (a span started while enabled still records if tracing
/// is disabled mid-flight, keeping begin/end pairing trivial).
class SpanGuard {
 public:
  explicit SpanGuard(const char* name, const char* arg_name = nullptr,
                     std::uint64_t arg_value = 0) {
    if (Tracer::enabled()) {
      name_ = name;
      arg_name_ = arg_name;
      arg_value_ = arg_value;
      t0_ = Tracer::global().now_ns();
    }
  }
  ~SpanGuard() {
    if (name_ != nullptr) {
      Tracer& t = Tracer::global();
      t.record_complete(name_, t0_, t.now_ns() - t0_, arg_name_, arg_value_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_value_ = 0;
  std::uint64_t t0_ = 0;
};

#define DCPROF_OBS_CAT2(a, b) a##b
#define DCPROF_OBS_CAT(a, b) DCPROF_OBS_CAT2(a, b)

/// Scoped span covering the rest of the enclosing block.
#define OBS_SPAN(name) \
  ::dcprof::obs::SpanGuard DCPROF_OBS_CAT(obs_span_, __LINE__)(name)
/// Scoped span with one named integer argument.
#define OBS_SPAN_V(name, arg_name, arg_value)                       \
  ::dcprof::obs::SpanGuard DCPROF_OBS_CAT(obs_span_, __LINE__)(     \
      name, arg_name, static_cast<std::uint64_t>(arg_value))
/// Point-in-time event.
#define OBS_INSTANT(name)                     \
  do {                                        \
    if (::dcprof::obs::Tracer::enabled()) {   \
      ::dcprof::obs::Tracer::global().record_instant(name); \
    }                                         \
  } while (0)

}  // namespace dcprof::obs
