#include "obs/tracer.h"

#include <chrono>
#include <cstdio>
#include <ostream>

namespace dcprof::obs {

namespace {

std::uint64_t clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Nanoseconds rendered as fractional microseconds (trace_event's unit).
std::string us_from_ns(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

Tracer::Tracer() : epoch_ns_(clock_ns()) {}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer;  // immortal (thread caches point in)
  return *tracer;
}

std::uint64_t Tracer::now_ns() const { return clock_ns() - epoch_ns_; }

Tracer::ThreadBuf& Tracer::buf() {
  // Per-(tracer, thread) cache: the fast path is one thread_local read.
  // Keyed by tracer so tests running their own Tracer instances do not
  // poison the global one's cache.
  thread_local Tracer* cached_for = nullptr;
  thread_local ThreadBuf* cached = nullptr;
  if (cached_for == this && cached != nullptr) return *cached;
  std::lock_guard lock(mu_);
  auto tb = std::make_unique<ThreadBuf>();
  tb->track = static_cast<std::uint32_t>(threads_.size());
  tb->ring.resize(capacity_);
  cached = tb.get();
  cached_for = this;
  threads_.push_back(std::move(tb));
  return *cached;
}

void Tracer::set_thread_name(const std::string& name) {
  ThreadBuf& b = buf();
  std::lock_guard lock(mu_);
  b.name = name;
}

void Tracer::record_complete(const char* name, std::uint64_t ts_ns,
                             std::uint64_t dur_ns, const char* arg_name,
                             std::uint64_t arg_value) {
  Event e;
  e.name = name;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  buf().push(e);
}

void Tracer::record_instant(const char* name, const char* arg_name,
                            std::uint64_t arg_value) {
  Event e;
  e.name = name;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  e.ts_ns = now_ns();
  e.instant = true;
  buf().push(e);
}

void Tracer::set_capacity_per_thread(std::size_t events) {
  std::lock_guard lock(mu_);
  capacity_ = events == 0 ? 1 : events;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& t : threads_) {
    const std::uint64_t appended =
        t->appended.load(std::memory_order_acquire);
    if (appended > t->ring.size()) dropped += appended - t->ring.size();
  }
  return dropped;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& t : threads_) {
    n += static_cast<std::size_t>(std::min<std::uint64_t>(
        t->appended.load(std::memory_order_acquire), t->ring.size()));
  }
  return n;
}

void Tracer::write_json(std::ostream& out) const {
  std::lock_guard lock(mu_);
  std::string doc = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) doc += ',';
    first = false;
    doc += event;
  };
  for (const auto& t : threads_) {
    if (!t->name.empty()) {
      std::string m = "{\"ph\":\"M\",\"pid\":0,\"tid\":" +
                      std::to_string(t->track) +
                      ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      append_escaped(m, t->name.c_str());
      m += "\"}}";
      emit(m);
    }
    const std::uint64_t appended =
        t->appended.load(std::memory_order_acquire);
    const std::uint64_t kept =
        std::min<std::uint64_t>(appended, t->ring.size());
    for (std::uint64_t i = 0; i < kept; ++i) {
      // Oldest-first: the ring holds the newest `kept` events ending at
      // slot (appended - 1) % size.
      const Event& e =
          t->ring[static_cast<std::size_t>((appended - kept + i) %
                                           t->ring.size())];
      std::string ev = "{\"ph\":\"";
      ev += e.instant ? 'i' : 'X';
      ev += "\",\"pid\":0,\"tid\":" + std::to_string(t->track) +
            ",\"cat\":\"dcprof\",\"name\":\"";
      append_escaped(ev, e.name);
      ev += "\",\"ts\":" + us_from_ns(e.ts_ns);
      if (!e.instant) {
        ev += ",\"dur\":" + us_from_ns(e.dur_ns);
      } else {
        ev += ",\"s\":\"t\"";
      }
      if (e.arg_name != nullptr) {
        ev += ",\"args\":{\"";
        append_escaped(ev, e.arg_name);
        ev += "\":" + std::to_string(e.arg_value) + '}';
      }
      ev += '}';
      emit(ev);
    }
  }
  doc += "],\"displayTimeUnit\":\"ms\"}";
  out << doc;
}

void Tracer::reset() {
  std::lock_guard lock(mu_);
  for (auto& t : threads_) {
    t->appended.store(0, std::memory_order_release);
    if (t->ring.size() != capacity_) {
      t->ring.assign(capacity_, Event{});
    }
  }
  epoch_ns_ = clock_ns();
}

}  // namespace dcprof::obs
