#include "obs/overhead.h"

#include <cstdio>

namespace dcprof::obs {

OverheadReport account_overhead(const Snapshot& snap, double total_wall_ms) {
  OverheadReport r;
  r.total_wall_ms = total_wall_ms;
  r.sample_handling_ms = snap.value("profiler.sample_ns") / 1e6;
  r.alloc_tracking_ms = snap.value("tracker.alloc_ns") / 1e6;
  r.writeout_ms = snap.value("io.write_ns") / 1e6;
  r.samples = snap.value("profiler.samples{outcome=handled}");
  r.profile_bytes = snap.value("io.profile_bytes");
  return r;
}

std::string OverheadReport::to_table(const std::string& workload) const {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "profiler overhead%s%s (Table-1 style, live telemetry)\n"
      "  total wall            %10.2f ms\n"
      "  sample handling       %10.2f ms  (%llu samples, %.0f ns/sample)\n"
      "  allocation tracking   %10.2f ms\n"
      "  profile write-out     %10.2f ms\n"
      "  profiler total        %10.2f ms\n"
      "  runtime dilation      %10.2f %%\n"
      "  profile size          %10.1f KB\n",
      workload.empty() ? "" : ": ", workload.c_str(), total_wall_ms,
      sample_handling_ms, static_cast<unsigned long long>(samples),
      ns_per_sample(), alloc_tracking_ms, writeout_ms, profiler_ms(),
      dilation_percent(), profile_bytes / 1024.0);
  return buf;
}

}  // namespace dcprof::obs
