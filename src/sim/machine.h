// The simulated machine: ties memory system + address space together and
// publishes every executed instruction / memory access to an observer
// (the PMU attaches here).
//
// Concurrency contract (the threaded rt backend): core-private state —
// L1/L2/TLB/prefetcher and the per-core instruction/access shards below —
// is safe for concurrent callers on *distinct* cores. Shared structures
// (per-socket L3 content, DRAM controller queues, the first-touch page
// table) are deliberately left unsynchronized: their *results* depend on
// access order, so callers must serialize accesses into a deterministic
// global order anyway (rt's turn token does this, with release/acquire
// hand-off providing the happens-before chain). Shared telemetry counters
// (LLC/DRAM level counts, DRAM queue totals) are atomic, so they stay
// exact even across that hand-off.
//
// Epoch-sharded contract (rt's sharded backend): while a DeferSink is
// installed, sockets run concurrently against socket-private state and
// every access that would touch cross-socket shared state is routed to
// the sink instead of being served; the backend replays the queued
// accesses through resolve_deferred() at its epoch barriers, in one
// canonical order, with every worker parked. Allocation (which moves
// page-table policy state) is forbidden while a sink is installed —
// rt::Allocator enforces this.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/address_space.h"
#include "sim/config.h"
#include "sim/memory_system.h"
#include "sim/types.h"

namespace dcprof::sim {

/// Hook the PMU implements. The machine is observer-agnostic so `sim`
/// stays independent of `pmu`.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  /// Called after each memory access has been resolved.
  virtual void on_access(const MemAccess& access) = 0;
  /// Called for non-memory work (`instrs` retired instructions). `ip`
  /// identifies the code region (representative instruction pointer).
  virtual void on_compute(ThreadId tid, CoreId core, std::uint64_t instrs,
                          Addr ip, Cycles now) = 0;
};

/// Hook the epoch-sharded execution backend implements: receives every
/// access whose DRAM resolution was postponed to an epoch barrier.
/// Called on the issuing thread's host thread, mid-slice.
class DeferSink {
 public:
  virtual ~DeferSink() = default;
  virtual void on_deferred(const DeferredAccess& d) = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);

  const MachineConfig& config() const { return cfg_; }
  MemorySystem& memory() { return memory_; }
  const MemorySystem& memory() const { return memory_; }
  AddressSpace& aspace() { return aspace_; }
  const AddressSpace& aspace() const { return aspace_; }

  /// What-if placement/latency override table (sim/override.h): the
  /// causal advisor patches a variable's page ranges here before a
  /// re-run. Mutate only at quiescent points (no construct in flight).
  OverrideMap& overrides() { return memory_.overrides(); }
  const OverrideMap& overrides() const { return memory_.overrides(); }

  /// At most one observer (the PMU set); null detaches. Attach/detach at
  /// quiescent points only (no constructs in flight).
  void set_observer(AccessObserver* observer) { observer_ = observer; }
  AccessObserver* observer() const { return observer_; }

  /// Issues one memory access on `core` at instruction `ip`, advancing
  /// the caller's thread clock by the observed latency.
  AccessResult access(ThreadId tid, CoreId core, Addr ip, Addr addr,
                      std::uint32_t size, bool is_store, Cycles& clock);

  /// Retires `instrs` non-memory instructions (1 cycle each) attributed
  /// to code at `ip`.
  void compute(ThreadId tid, CoreId core, std::uint64_t instrs, Addr ip,
               Cycles& clock);

  /// Flips the machine into epoch-sharded mode (sink != nullptr): every
  /// cross-socket access is routed to `sink` instead of being served, and
  /// socket shards may call access() concurrently (distinct sockets
  /// only). Install/remove at quiescent points — rt's sharded backend
  /// brackets each parallel construct, with its dispatch handshake
  /// providing the happens-before edge to the workers.
  void set_defer_sink(DeferSink* sink) { defer_sink_ = sink; }
  /// True while a shard construct is in flight (deferral active).
  bool deferring() const { return defer_sink_ != nullptr; }

  /// Replays one deferred access at an epoch barrier: resolves it in the
  /// memory system (first-touch binding + controller queueing at the
  /// access's *issue* time) and publishes the now-complete MemAccess to
  /// the observer, stamped `at = issued_at`. Single-threaded canonical
  /// order; all shard workers must be parked.
  AccessResult resolve_deferred(const DeferredAccess& d);

  /// Total retired instructions / memory accesses, summed over the
  /// per-core shards.
  ///
  /// Quiescent-point contract: the per-core cells are written by
  /// whichever host thread is driving that core, so the sum is *exact*
  /// only at quiescent points (no parallel construct in flight — between
  /// Team constructs, inside Team::single, after a run). Read mid-
  /// construct the cells are individually torn-free (relaxed atomics, so
  /// never UB) but the total is a racy snapshot that can mix per-core
  /// values from different instants. The debug assertion below catches
  /// the sharded-backend misuse (reads while an epoch construct is in
  /// flight); the turn-token backend has no equivalent flag, so the
  /// contract is documentation there.
  std::uint64_t instructions_retired() const;
  std::uint64_t memory_accesses() const;

 private:
  /// Retirement counters sharded per core (cache-line padded) so
  /// concurrent callers on distinct cores never contend or race. The
  /// fields are single-writer relaxed atomics (load+add+store, not RMW):
  /// free on the hot path, and cross-thread readers get values instead
  /// of undefined behaviour — exactness is still only guaranteed at
  /// quiescent points (see instructions_retired()).
  struct alignas(64) CoreCounters {
    std::atomic<std::uint64_t> instructions{0};
    std::atomic<std::uint64_t> mem_accesses{0};
  };
  static void bump(std::atomic<std::uint64_t>& c, std::uint64_t n) {
    c.store(c.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
  }

  MachineConfig cfg_;
  MemorySystem memory_;
  AddressSpace aspace_;
  AccessObserver* observer_ = nullptr;
  DeferSink* defer_sink_ = nullptr;
  std::vector<CoreCounters> counts_;  // per core
};

}  // namespace dcprof::sim
