// The simulated machine: ties memory system + address space together and
// publishes every executed instruction / memory access to an observer
// (the PMU attaches here).
//
// Concurrency contract (the threaded rt backend): core-private state —
// L1/L2/TLB/prefetcher and the per-core instruction/access shards below —
// is safe for concurrent callers on *distinct* cores. Shared structures
// (per-socket L3 content, DRAM controller queues, the first-touch page
// table) are deliberately left unsynchronized: their *results* depend on
// access order, so callers must serialize accesses into a deterministic
// global order anyway (rt's turn token does this, with release/acquire
// hand-off providing the happens-before chain). Shared telemetry counters
// (LLC/DRAM level counts, DRAM queue totals) are atomic, so they stay
// exact even across that hand-off.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/address_space.h"
#include "sim/config.h"
#include "sim/memory_system.h"
#include "sim/types.h"

namespace dcprof::sim {

/// Hook the PMU implements. The machine is observer-agnostic so `sim`
/// stays independent of `pmu`.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  /// Called after each memory access has been resolved.
  virtual void on_access(const MemAccess& access) = 0;
  /// Called for non-memory work (`instrs` retired instructions). `ip`
  /// identifies the code region (representative instruction pointer).
  virtual void on_compute(ThreadId tid, CoreId core, std::uint64_t instrs,
                          Addr ip, Cycles now) = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);

  const MachineConfig& config() const { return cfg_; }
  MemorySystem& memory() { return memory_; }
  const MemorySystem& memory() const { return memory_; }
  AddressSpace& aspace() { return aspace_; }
  const AddressSpace& aspace() const { return aspace_; }

  /// At most one observer (the PMU set); null detaches. Attach/detach at
  /// quiescent points only (no constructs in flight).
  void set_observer(AccessObserver* observer) { observer_ = observer; }
  AccessObserver* observer() const { return observer_; }

  /// Issues one memory access on `core` at instruction `ip`, advancing
  /// the caller's thread clock by the observed latency.
  AccessResult access(ThreadId tid, CoreId core, Addr ip, Addr addr,
                      std::uint32_t size, bool is_store, Cycles& clock);

  /// Retires `instrs` non-memory instructions (1 cycle each) attributed
  /// to code at `ip`.
  void compute(ThreadId tid, CoreId core, std::uint64_t instrs, Addr ip,
               Cycles& clock);

  std::uint64_t instructions_retired() const;
  std::uint64_t memory_accesses() const;

 private:
  /// Retirement counters sharded per core (cache-line padded) so
  /// concurrent callers on distinct cores never contend or race.
  struct alignas(64) CoreCounters {
    std::uint64_t instructions = 0;
    std::uint64_t mem_accesses = 0;
  };

  MachineConfig cfg_;
  MemorySystem memory_;
  AddressSpace aspace_;
  AccessObserver* observer_ = nullptr;
  std::vector<CoreCounters> counts_;  // per core
};

}  // namespace dcprof::sim
