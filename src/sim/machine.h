// The simulated machine: ties memory system + address space together and
// publishes every executed instruction / memory access to an observer
// (the PMU attaches here).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/address_space.h"
#include "sim/config.h"
#include "sim/memory_system.h"
#include "sim/types.h"

namespace dcprof::sim {

/// Hook the PMU implements. The machine is observer-agnostic so `sim`
/// stays independent of `pmu`.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  /// Called after each memory access has been resolved.
  virtual void on_access(const MemAccess& access) = 0;
  /// Called for non-memory work (`instrs` retired instructions). `ip`
  /// identifies the code region (representative instruction pointer).
  virtual void on_compute(ThreadId tid, CoreId core, std::uint64_t instrs,
                          Addr ip, Cycles now) = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);

  const MachineConfig& config() const { return cfg_; }
  MemorySystem& memory() { return memory_; }
  const MemorySystem& memory() const { return memory_; }
  AddressSpace& aspace() { return aspace_; }
  const AddressSpace& aspace() const { return aspace_; }

  /// At most one observer (the PMU set); null detaches.
  void set_observer(AccessObserver* observer) { observer_ = observer; }
  AccessObserver* observer() const { return observer_; }

  /// Issues one memory access on `core` at instruction `ip`, advancing
  /// the caller's thread clock by the observed latency.
  AccessResult access(ThreadId tid, CoreId core, Addr ip, Addr addr,
                      std::uint32_t size, bool is_store, Cycles& clock);

  /// Retires `instrs` non-memory instructions (1 cycle each) attributed
  /// to code at `ip`.
  void compute(ThreadId tid, CoreId core, std::uint64_t instrs, Addr ip,
               Cycles& clock);

  std::uint64_t instructions_retired() const { return instructions_; }
  std::uint64_t memory_accesses() const { return mem_accesses_; }

 private:
  MachineConfig cfg_;
  MemorySystem memory_;
  AddressSpace aspace_;
  AccessObserver* observer_ = nullptr;
  std::uint64_t instructions_ = 0;
  std::uint64_t mem_accesses_ = 0;
};

}  // namespace dcprof::sim
