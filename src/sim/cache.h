// Set-associative LRU cache model.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/types.h"

namespace dcprof::sim {

/// A set-associative cache with true-LRU replacement. Addresses are
/// looked up by cache line; the cache stores tags only (no data).
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Looks up `addr`; on a miss, fills the line (evicting LRU).
  /// Returns true on hit.
  bool access(Addr addr);

  /// Looks up without filling. Used by tests and inclusive-probe logic.
  bool contains(Addr addr) const;

  /// Invalidates the line holding `addr` if present.
  void invalidate(Addr addr);

  /// Drops all lines.
  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  unsigned line_bytes() const { return 1u << line_shift_; }
  std::size_t num_sets() const { return sets_; }
  unsigned associativity() const { return assoc_; }

 private:
  struct Way {
    Addr tag = 0;
    bool valid = false;
  };

  std::size_t set_index(Addr addr) const {
    return (addr >> line_shift_) & (sets_ - 1);
  }
  Addr tag_of(Addr addr) const { return addr >> line_shift_; }

  unsigned line_shift_;
  std::size_t sets_;
  unsigned assoc_;
  // Ways within a set are kept in MRU-first order; eviction takes the back.
  std::vector<Way> ways_;  // sets_ * assoc_, set-major
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Fully-associative LRU TLB over pages.
class Tlb {
 public:
  Tlb(unsigned entries, std::size_t page_bytes);

  /// Returns true on hit; on miss, installs the translation.
  bool access(Addr addr);
  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  unsigned page_shift_;
  unsigned entries_;
  std::vector<Addr> pages_;  // MRU-first
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dcprof::sim
