#include "sim/cache.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace dcprof::sim {

namespace {
unsigned log2_exact(std::uint64_t v, const char* what) {
  if (v == 0 || (v & (v - 1)) != 0) {
    throw std::invalid_argument(std::string(what) + " must be a power of two");
  }
  return static_cast<unsigned>(std::countr_zero(v));
}
}  // namespace

SetAssocCache::SetAssocCache(const CacheConfig& cfg)
    : line_shift_(log2_exact(cfg.line_bytes, "cache line size")),
      sets_(cfg.size_bytes / (cfg.line_bytes * cfg.associativity)),
      assoc_(cfg.associativity) {
  if (sets_ == 0) throw std::invalid_argument("cache too small for geometry");
  log2_exact(sets_, "cache set count");
  ways_.resize(sets_ * assoc_);
}

bool SetAssocCache::access(Addr addr) {
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Way* base = &ways_[set * assoc_];
  for (unsigned i = 0; i < assoc_; ++i) {
    if (base[i].valid && base[i].tag == tag) {
      // Move to MRU position.
      std::rotate(base, base + i, base + i + 1);
      ++hits_;
      return true;
    }
  }
  ++misses_;
  // Fill: shift everything down one way, insert at MRU; LRU way falls off.
  std::rotate(base, base + assoc_ - 1, base + assoc_);
  base[0] = Way{tag, true};
  return false;
}

bool SetAssocCache::contains(Addr addr) const {
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  const Way* base = &ways_[set * assoc_];
  for (unsigned i = 0; i < assoc_; ++i) {
    if (base[i].valid && base[i].tag == tag) return true;
  }
  return false;
}

void SetAssocCache::invalidate(Addr addr) {
  const std::size_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Way* base = &ways_[set * assoc_];
  for (unsigned i = 0; i < assoc_; ++i) {
    if (base[i].valid && base[i].tag == tag) {
      base[i].valid = false;
      return;
    }
  }
}

void SetAssocCache::clear() {
  for (auto& w : ways_) w.valid = false;
}

Tlb::Tlb(unsigned entries, std::size_t page_bytes)
    : page_shift_(log2_exact(page_bytes, "page size")), entries_(entries) {
  pages_.reserve(entries_);
}

bool Tlb::access(Addr addr) {
  const Addr page = addr >> page_shift_;
  auto it = std::find(pages_.begin(), pages_.end(), page);
  if (it != pages_.end()) {
    std::rotate(pages_.begin(), it, it + 1);
    ++hits_;
    return true;
  }
  ++misses_;
  if (pages_.size() == entries_) pages_.pop_back();
  pages_.insert(pages_.begin(), page);
  return false;
}

void Tlb::clear() { pages_.clear(); }

const char* to_string(MemLevel level) {
  switch (level) {
    case MemLevel::kL1: return "L1";
    case MemLevel::kL2: return "L2";
    case MemLevel::kL3: return "L3";
    case MemLevel::kLocalDram: return "LocalDram";
    case MemLevel::kRemoteDram: return "RemoteDram";
  }
  return "?";
}

}  // namespace dcprof::sim
