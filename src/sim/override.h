// What-if override tables: per-page-range placement/latency patches the
// causal advisor applies when re-running a workload to compute an *exact*
// virtual speedup (re-execute with the fix applied, not an estimate).
// The map is consulted by MemorySystem at the two points a fix can act:
// first touch (page binding) and the DRAM-home lookup of a fill.
#pragma once

#include <cstdint>
#include <map>

#include "sim/types.h"

namespace dcprof::sim {

/// Placement patch for a variable's pages.
enum class PlacementOverride : std::uint8_t {
  kNone,
  /// Every DRAM fill is served by the toucher's own controller — the
  /// perfect-locality bound of a first-touch/libnuma placement fix.
  kLocal,
  /// Pages bind round-robin across nodes at first touch (the libnuma
  /// numa_alloc_interleaved fix), sharing the process interleave cursor.
  kInterleave,
};

/// Latency patch for a variable's DRAM fills. Either latency override
/// also bypasses the TLB for the variable's accesses (not consulted, not
/// charged, not filled): the modeled fix shrinks the variable's
/// translation footprint to nothing, so *other* variables' TLB entries
/// survive instead of being thrashed by its strided walk — a real layout
/// fix's largest second-order effect.
enum class LatencyOverride : std::uint8_t {
  kNone,
  /// Misses are promoted one level: remote DRAM costs local DRAM, local
  /// DRAM costs an L3 hit (a data-layout fix that restores spatial —
  /// and, with it, translation — locality).
  kNextLevel,
  /// Oracle bound: the variable's memory-side latency vanishes entirely
  /// and its fills consume no controller bandwidth. Used by the property
  /// tests as the ceiling no realizable fix may exceed.
  kZero,
};

const char* to_string(PlacementOverride p);
const char* to_string(LatencyOverride l);

struct OverrideEntry {
  PlacementOverride placement = PlacementOverride::kNone;
  LatencyOverride latency = LatencyOverride::kNone;

  bool none() const {
    return placement == PlacementOverride::kNone &&
           latency == LatencyOverride::kNone;
  }
};

/// Page-granular interval table of override entries. Ranges are added
/// per variable (a heap block or a static segment) and rounded outward
/// to whole pages — placement is a per-page property, so a boundary page
/// shared with a neighbouring block is patched too. On overlap the
/// first-installed range wins, which keeps installation order-dependent
/// slop deterministic. Lookup is O(log ranges) and only ever paid in
/// what-if runs: normal runs keep the map empty and `empty()` is one
/// branch on the miss path.
class OverrideMap {
 public:
  explicit OverrideMap(std::size_t page_bytes) : page_bytes_(page_bytes) {}

  /// Patches the pages backing [base, base+size).
  void add_range(Addr base, std::uint64_t size, OverrideEntry entry);

  /// Drops the patch from pages intersecting [base, base+size) (a freed
  /// block's range must not leak onto the heap's next tenant).
  void remove_range(Addr base, std::uint64_t size);

  void clear() { ranges_.clear(); }
  bool empty() const { return ranges_.empty(); }
  std::size_t num_ranges() const { return ranges_.size(); }
  std::uint64_t num_pages() const;

  /// Entry covering `addr`'s page, or nullptr.
  const OverrideEntry* lookup(Addr addr) const;

 private:
  struct Range {
    Addr end_page;  ///< exclusive
    OverrideEntry entry;
  };

  std::size_t page_bytes_;
  std::map<Addr, Range> ranges_;  ///< first page -> range
};

}  // namespace dcprof::sim
