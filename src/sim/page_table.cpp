#include "sim/page_table.h"

#include <stdexcept>

namespace dcprof::sim {

const char* to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kFirstTouch: return "first-touch";
    case PlacementPolicy::kInterleave: return "interleave";
    case PlacementPolicy::kFixed: return "fixed";
  }
  return "?";
}

PageTable::PageTable(std::size_t page_bytes, int num_nodes)
    : page_bytes_(page_bytes), num_nodes_(num_nodes) {
  if (num_nodes_ <= 0) throw std::invalid_argument("num_nodes must be > 0");
}

void PageTable::set_policy(Addr base, std::uint64_t size,
                           PlacementPolicy policy, NodeId fixed_node) {
  if (size == 0) return;
  if (policy == PlacementPolicy::kFixed &&
      (fixed_node < 0 || fixed_node >= num_nodes_)) {
    throw std::invalid_argument("fixed placement needs a valid node");
  }
  regions_[base] = Region{base + size, policy, fixed_node};
}

void PageTable::release_range(Addr base, std::uint64_t size) {
  const Addr end = base + size;
  for (auto it = regions_.lower_bound(base);
       it != regions_.end() && it->first < end;) {
    if (it->second.end <= end) {
      it = regions_.erase(it);
    } else {
      ++it;
    }
  }
  // Only pages fully contained in the released range are unmapped;
  // boundary pages may still back neighbouring live blocks.
  const Addr first = (base + page_bytes_ - 1) / page_bytes_;
  const Addr last = end / page_bytes_;  // exclusive
  for (Addr p = first; p < last; ++p) {
    page_node_.erase(p);
  }
}

PageTable::Region* PageTable::region_covering(Addr addr) {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return nullptr;
  --it;
  if (addr < it->second.end) return &it->second;
  return nullptr;
}

NodeId PageTable::touch(Addr addr, NodeId toucher,
                        const PlacementPolicy* forced) {
  const Addr page = page_of(addr);
  if (auto it = page_node_.find(page); it != page_node_.end()) {
    return it->second;
  }
  PlacementPolicy policy = default_policy_;
  NodeId fixed = kNoNode;
  if (forced != nullptr) {
    policy = *forced;
  } else if (Region* region = region_covering(addr); region != nullptr) {
    policy = region->policy;
    fixed = region->fixed_node;
  }
  NodeId node;
  switch (policy) {
    case PlacementPolicy::kFirstTouch:
      node = toucher;
      break;
    case PlacementPolicy::kInterleave:
      node = static_cast<NodeId>(interleave_cursor_++ %
                                 static_cast<std::uint64_t>(num_nodes_));
      break;
    case PlacementPolicy::kFixed:
      node = fixed;
      break;
    default:
      node = toucher;
  }
  if (node < 0 || node >= num_nodes_) node = 0;
  page_node_.emplace(page, node);
  return node;
}

NodeId PageTable::node_of(Addr addr) const {
  auto it = page_node_.find(page_of(addr));
  return it == page_node_.end() ? kNoNode : it->second;
}

std::vector<std::uint64_t> PageTable::pages_per_node() const {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(num_nodes_), 0);
  for (const auto& [page, node] : page_node_) {
    (void)page;
    if (node >= 0 && node < num_nodes_) ++counts[static_cast<std::size_t>(node)];
  }
  return counts;
}

}  // namespace dcprof::sim
