#include "sim/override.h"

namespace dcprof::sim {

const char* to_string(PlacementOverride p) {
  switch (p) {
    case PlacementOverride::kNone: return "none";
    case PlacementOverride::kLocal: return "local";
    case PlacementOverride::kInterleave: return "interleave";
  }
  return "?";
}

const char* to_string(LatencyOverride l) {
  switch (l) {
    case LatencyOverride::kNone: return "none";
    case LatencyOverride::kNextLevel: return "next-level";
    case LatencyOverride::kZero: return "zero";
  }
  return "?";
}

void OverrideMap::add_range(Addr base, std::uint64_t size,
                            OverrideEntry entry) {
  if (size == 0 || entry.none()) return;
  Addr cur = base / page_bytes_;
  const Addr last = (base + size - 1) / page_bytes_ + 1;
  while (cur < last) {
    // Skip past any existing range covering `cur` (first-installed wins).
    if (auto it = ranges_.upper_bound(cur); it != ranges_.begin()) {
      if (auto prev = std::prev(it); prev->second.end_page > cur) {
        cur = prev->second.end_page;
        continue;
      }
    }
    const auto next = ranges_.lower_bound(cur);
    const Addr gap_end =
        (next != ranges_.end() && next->first < last) ? next->first : last;
    ranges_.emplace(cur, Range{gap_end, entry});
    cur = gap_end;
  }
}

void OverrideMap::remove_range(Addr base, std::uint64_t size) {
  if (size == 0 || ranges_.empty()) return;
  const Addr first = base / page_bytes_;
  const Addr last = (base + size - 1) / page_bytes_ + 1;
  auto it = ranges_.upper_bound(first);
  if (it != ranges_.begin()) --it;
  while (it != ranges_.end() && it->first < last) {
    const Addr s = it->first;
    const Addr e = it->second.end_page;
    const OverrideEntry entry = it->second.entry;
    if (e <= first) {
      ++it;
      continue;
    }
    it = ranges_.erase(it);
    if (s < first) ranges_.emplace(s, Range{first, entry});
    if (e > last) it = ranges_.emplace(last, Range{e, entry}).first;
  }
}

std::uint64_t OverrideMap::num_pages() const {
  std::uint64_t pages = 0;
  for (const auto& [start, range] : ranges_) pages += range.end_page - start;
  return pages;
}

const OverrideEntry* OverrideMap::lookup(Addr addr) const {
  const Addr page = addr / page_bytes_;
  auto it = ranges_.upper_bound(page);
  if (it == ranges_.begin()) return nullptr;
  --it;
  return page < it->second.end_page ? &it->second.entry : nullptr;
}

}  // namespace dcprof::sim
