#include "sim/machine.h"

namespace dcprof::sim {

Machine::Machine(const MachineConfig& cfg) : cfg_(cfg), memory_(cfg) {}

AccessResult Machine::access(ThreadId tid, CoreId core, Addr ip, Addr addr,
                             std::uint32_t size, bool is_store,
                             Cycles& clock) {
  const AccessResult result = memory_.access(core, addr, is_store, clock);
  ++instructions_;
  ++mem_accesses_;
  const Cycles at = clock;
  clock += result.latency;
  if (observer_ != nullptr) {
    observer_->on_access(MemAccess{tid, core, ip, addr, size, is_store,
                                   result, at});
  }
  return result;
}

void Machine::compute(ThreadId tid, CoreId core, std::uint64_t instrs,
                      Addr ip, Cycles& clock) {
  instructions_ += instrs;
  clock += instrs;
  if (observer_ != nullptr) {
    observer_->on_compute(tid, core, instrs, ip, clock);
  }
}

}  // namespace dcprof::sim
