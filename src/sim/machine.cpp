#include "sim/machine.h"

namespace dcprof::sim {

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg), memory_(cfg),
      counts_(static_cast<std::size_t>(cfg.num_cores())) {}

AccessResult Machine::access(ThreadId tid, CoreId core, Addr ip, Addr addr,
                             std::uint32_t size, bool is_store,
                             Cycles& clock) {
  const AccessResult result = memory_.access(core, addr, is_store, clock);
  CoreCounters& cc = counts_[static_cast<std::size_t>(core)];
  ++cc.instructions;
  ++cc.mem_accesses;
  const Cycles at = clock;
  clock += result.latency;
  if (observer_ != nullptr) {
    observer_->on_access(MemAccess{tid, core, ip, addr, size, is_store,
                                   result, at});
  }
  return result;
}

void Machine::compute(ThreadId tid, CoreId core, std::uint64_t instrs,
                      Addr ip, Cycles& clock) {
  counts_[static_cast<std::size_t>(core)].instructions += instrs;
  clock += instrs;
  if (observer_ != nullptr) {
    observer_->on_compute(tid, core, instrs, ip, clock);
  }
}

std::uint64_t Machine::instructions_retired() const {
  std::uint64_t sum = 0;
  for (const CoreCounters& cc : counts_) sum += cc.instructions;
  return sum;
}

std::uint64_t Machine::memory_accesses() const {
  std::uint64_t sum = 0;
  for (const CoreCounters& cc : counts_) sum += cc.mem_accesses;
  return sum;
}

}  // namespace dcprof::sim
