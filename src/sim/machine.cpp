#include "sim/machine.h"

namespace dcprof::sim {

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg), memory_(cfg),
      counts_(static_cast<std::size_t>(cfg.num_cores())) {}

AccessResult Machine::access(ThreadId tid, CoreId core, Addr ip, Addr addr,
                             std::uint32_t size, bool is_store,
                             Cycles& clock) {
  CoreCounters& cc = counts_[static_cast<std::size_t>(core)];
  bump(cc.instructions, 1);
  bump(cc.mem_accesses, 1);
  if (defer_sink_ != nullptr) {
    DeferredAccess d;
    const AccessResult result =
        memory_.access_sharded(core, addr, is_store, clock, &d);
    const Cycles at = clock;
    clock += result.latency;  // zero when deferred
    if (result.deferred) {
      d.tid = tid;
      d.ip = ip;
      d.size = size;
      defer_sink_->on_deferred(d);
      return result;
    }
    if (observer_ != nullptr) {
      observer_->on_access(MemAccess{tid, core, ip, addr, size, is_store,
                                     result, at});
    }
    return result;
  }
  const AccessResult result = memory_.access(core, addr, is_store, clock);
  const Cycles at = clock;
  clock += result.latency;
  if (observer_ != nullptr) {
    observer_->on_access(MemAccess{tid, core, ip, addr, size, is_store,
                                   result, at});
  }
  return result;
}

AccessResult Machine::resolve_deferred(const DeferredAccess& d) {
  const AccessResult result = memory_.resolve_deferred(d);
  if (observer_ != nullptr) {
    observer_->on_access(MemAccess{d.tid, d.core, d.ip, d.addr, d.size,
                                   d.is_store, result, d.issued_at});
  }
  return result;
}

void Machine::compute(ThreadId tid, CoreId core, std::uint64_t instrs,
                      Addr ip, Cycles& clock) {
  bump(counts_[static_cast<std::size_t>(core)].instructions, instrs);
  clock += instrs;
  if (observer_ != nullptr) {
    observer_->on_compute(tid, core, instrs, ip, clock);
  }
}

std::uint64_t Machine::instructions_retired() const {
  assert(!deferring() && "counter sums are exact only at quiescent points");
  std::uint64_t sum = 0;
  for (const CoreCounters& cc : counts_) {
    sum += cc.instructions.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t Machine::memory_accesses() const {
  assert(!deferring() && "counter sums are exact only at quiescent points");
  std::uint64_t sum = 0;
  for (const CoreCounters& cc : counts_) {
    sum += cc.mem_accesses.load(std::memory_order_relaxed);
  }
  return sum;
}

}  // namespace dcprof::sim
