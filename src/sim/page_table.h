// Page table with NUMA placement policies.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/types.h"

namespace dcprof::sim {

/// How pages of a region are assigned to NUMA nodes when first touched.
enum class PlacementPolicy : std::uint8_t {
  kFirstTouch,  ///< page lands on the toucher's node (Linux default)
  kInterleave,  ///< pages round-robin across all nodes (numactl/libnuma)
  kFixed,       ///< all pages on one designated node (membind)
};

const char* to_string(PlacementPolicy p);

/// Maps pages to NUMA nodes. Regions carry a placement policy; a page is
/// bound to a node the first time it is touched ("first touch" happens at
/// page granularity, exactly as in Linux).
class PageTable {
 public:
  PageTable(std::size_t page_bytes, int num_nodes);

  /// Declares the placement policy for [base, base+size). Later
  /// declarations override earlier ones for overlapping ranges only if
  /// the pages are still unmapped.
  void set_policy(Addr base, std::uint64_t size, PlacementPolicy policy,
                  NodeId fixed_node = kNoNode);

  /// Removes policy regions fully inside [base, base+size) and unmaps its
  /// pages (used when the heap frees a block so reuse re-places pages).
  void release_range(Addr base, std::uint64_t size);

  /// Node holding the page of `addr`, binding it on first touch.
  /// `toucher` is the node of the accessing core. When `forced` is
  /// non-null it replaces the region's declared policy for this binding —
  /// the what-if engine's placement override, applied only to pages not
  /// yet mapped (already-bound pages keep their node).
  NodeId touch(Addr addr, NodeId toucher,
               const PlacementPolicy* forced = nullptr);

  /// Node holding the page of `addr`, or kNoNode if never touched.
  NodeId node_of(Addr addr) const;

  /// Default policy used for addresses outside any declared region.
  void set_default_policy(PlacementPolicy policy) { default_policy_ = policy; }
  PlacementPolicy default_policy() const { return default_policy_; }

  /// Pages currently resident on each node.
  std::vector<std::uint64_t> pages_per_node() const;

  std::size_t mapped_pages() const { return page_node_.size(); }

 private:
  struct Region {
    Addr end = 0;  // exclusive
    PlacementPolicy policy = PlacementPolicy::kFirstTouch;
    NodeId fixed_node = kNoNode;
  };

  Addr page_of(Addr addr) const { return addr / page_bytes_; }
  Region* region_covering(Addr addr);

  std::size_t page_bytes_;
  int num_nodes_;
  PlacementPolicy default_policy_ = PlacementPolicy::kFirstTouch;
  // Interleaving uses one process-wide round-robin cursor, mirroring
  // Linux MPOL_INTERLEAVE's per-task cursor.
  std::uint64_t interleave_cursor_ = 0;
  std::map<Addr, Region> regions_;                 // keyed by region base
  std::unordered_map<Addr, NodeId> page_node_;     // page index -> node
};

}  // namespace dcprof::sim
