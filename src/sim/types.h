// Basic vocabulary types for the simulated machine.
#pragma once

#include <cstdint>
#include <string>

namespace dcprof::sim {

/// Virtual address in the simulated address space.
using Addr = std::uint64_t;
/// Simulated time, in core clock cycles.
using Cycles = std::uint64_t;
/// Virtual thread id (dense, per process/rank).
using ThreadId = std::int32_t;
/// Core id (dense across the whole machine).
using CoreId = std::int32_t;
/// NUMA domain id.
using NodeId = std::int32_t;

inline constexpr NodeId kNoNode = -1;

/// Level of the memory hierarchy that satisfied an access.
enum class MemLevel : std::uint8_t {
  kL1,
  kL2,
  kL3,
  kLocalDram,
  kRemoteDram,
};

/// Human-readable name, e.g. for reports ("L1", "RemoteDram", ...).
const char* to_string(MemLevel level);

/// Outcome of one memory access as resolved by the memory system.
struct AccessResult {
  Cycles latency = 0;      ///< total observed latency, incl. queueing
  MemLevel level = MemLevel::kL1;
  bool tlb_miss = false;
  bool prefetched = false; ///< DRAM fill hidden by the stream prefetcher
  NodeId home = kNoNode;   ///< NUMA node owning the page (DRAM fills only)
  Cycles queue_wait = 0;   ///< portion of latency spent waiting on a DRAM controller
};

/// One fully-resolved memory access, as seen by observers (the PMU).
struct MemAccess {
  ThreadId tid = 0;
  CoreId core = 0;
  Addr ip = 0;             ///< precise instruction pointer of the access
  Addr addr = 0;           ///< effective (virtual) data address
  std::uint32_t size = 0;  ///< bytes accessed
  bool is_store = false;
  AccessResult result;
  Cycles at = 0;           ///< thread-local clock when the access issued
};

}  // namespace dcprof::sim
