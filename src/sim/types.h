// Basic vocabulary types for the simulated machine.
#pragma once

#include <cstdint>
#include <string>

namespace dcprof::sim {

/// Virtual address in the simulated address space.
using Addr = std::uint64_t;
/// Simulated time, in core clock cycles.
using Cycles = std::uint64_t;
/// Virtual thread id (dense, per process/rank).
using ThreadId = std::int32_t;
/// Core id (dense across the whole machine).
using CoreId = std::int32_t;
/// NUMA domain id.
using NodeId = std::int32_t;

inline constexpr NodeId kNoNode = -1;

/// Level of the memory hierarchy that satisfied an access.
enum class MemLevel : std::uint8_t {
  kL1,
  kL2,
  kL3,
  kLocalDram,
  kRemoteDram,
};

/// Human-readable name, e.g. for reports ("L1", "RemoteDram", ...).
const char* to_string(MemLevel level);

/// Outcome of one memory access as resolved by the memory system.
struct AccessResult {
  Cycles latency = 0;      ///< total observed latency, incl. queueing
  MemLevel level = MemLevel::kL1;
  bool tlb_miss = false;
  bool prefetched = false; ///< DRAM fill hidden by the stream prefetcher
  NodeId home = kNoNode;   ///< NUMA node owning the page (DRAM fills only)
  Cycles queue_wait = 0;   ///< portion of latency spent waiting on a DRAM controller
  /// Epoch-sharded execution only: the access missed every cache and its
  /// DRAM resolution would touch cross-socket state, so it was queued for
  /// the next epoch barrier. latency/level/home are provisional (zero /
  /// unknown); the resolved result is delivered to the machine's observer
  /// at the barrier.
  bool deferred = false;
};

/// One cache-missing access whose DRAM resolution was postponed to an
/// epoch barrier (rt's sharded backend). Everything order-sensitive that
/// is *core- or socket-private* — TLB walk, cache fills, the prefetcher
/// consult — already happened at issue time and is recorded here; the
/// barrier replays only the shared part (first-touch page binding, DRAM
/// controller queueing) in canonical (socket, thread, issue) order.
struct DeferredAccess {
  ThreadId tid = 0;
  CoreId core = 0;
  Addr ip = 0;
  Addr addr = 0;
  std::uint32_t size = 0;
  bool is_store = false;
  bool tlb_miss = false;    ///< TLB walked (and was charged) at issue
  bool prefetched = false;  ///< prefetcher consult outcome at issue
  bool first_touch = false; ///< page was unhomed when the access issued
  Cycles issued_at = 0;     ///< issuing thread's clock at issue time
};

/// One fully-resolved memory access, as seen by observers (the PMU).
struct MemAccess {
  ThreadId tid = 0;
  CoreId core = 0;
  Addr ip = 0;             ///< precise instruction pointer of the access
  Addr addr = 0;           ///< effective (virtual) data address
  std::uint32_t size = 0;  ///< bytes accessed
  bool is_store = false;
  AccessResult result;
  Cycles at = 0;           ///< thread-local clock when the access issued
};

}  // namespace dcprof::sim
