// The memory hierarchy: per-core L1/L2 + TLB, per-socket L3, per-node DRAM
// controllers with bandwidth (queueing) contention, NUMA page placement.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/registry.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/override.h"
#include "sim/page_table.h"
#include "sim/types.h"

namespace dcprof::sim {

/// A NUMA node's memory controller: a leaky-bucket (processor-sharing)
/// queue. Each access deposits `service` cycles of work; the controller
/// drains `banks` cycles of work per cycle of forward time. The queueing
/// delay an access observes is the current backlog divided by the drain
/// rate — so every access issued into the same congestion sees a similar
/// delay. (A strict FIFO single-server model instead makes the *first*
/// miss after a barrier absorb the entire backlog while co-scheduled
/// misses ride free — an in-order artifact that misattributes latency
/// between arrays; out-of-order cores with miss-level parallelism show
/// IBS comparable delays on every queued miss.)
class DramController {
 public:
  DramController(Cycles service, unsigned banks)
      : service_(service), banks_(banks) {}
  /// Moves happen only during machine construction (vector growth),
  /// before any concurrent access.
  DramController(DramController&& o) noexcept
      : service_(o.service_), banks_(o.banks_), backlog_(o.backlog_),
        last_(o.last_),
        accesses_(o.accesses_.load(std::memory_order_relaxed)),
        total_wait_(o.total_wait_.load(std::memory_order_relaxed)) {}

  /// Serves one access issued at thread-local time `now`; returns the
  /// queueing delay it observes. Queue state (backlog/last) is shared
  /// across the node's cores and order-dependent, so callers serialize
  /// accesses (rt's turn token); the shared counters are atomic so
  /// readers on other threads always see exact totals.
  Cycles serve(Cycles now) {
    if (now > last_) {
      const Cycles drained = (now - last_) * banks_;
      backlog_ = backlog_ > drained ? backlog_ - drained : 0;
      last_ = now;
    }
    const Cycles wait = backlog_ / banks_;
    backlog_ += service_;
    accesses_.fetch_add(1, std::memory_order_relaxed);
    total_wait_.fetch_add(wait, std::memory_order_relaxed);
    return wait;
  }

  std::uint64_t accesses() const {
    return accesses_.load(std::memory_order_relaxed);
  }
  Cycles total_wait() const {
    return total_wait_.load(std::memory_order_relaxed);
  }
  Cycles backlog() const { return backlog_; }

 private:
  Cycles service_;
  Cycles banks_;
  Cycles backlog_ = 0;  ///< queued work, in bank-cycles
  Cycles last_ = 0;     ///< latest access time seen
  std::atomic<std::uint64_t> accesses_{0};
  std::atomic<Cycles> total_wait_{0};
};

/// Per-core hardware stream prefetcher: tracks up to kStreams ascending
/// line streams; a fill whose line extends a tracked stream (within one
/// page — prefetchers do not cross 4 KB boundaries) is considered
/// prefetched. Strided or irregular access defeats it.
class StreamPrefetcher {
 public:
  /// Observes a DRAM fill of `line`; returns true if it was prefetched.
  bool access(Addr line, unsigned lines_per_page) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (streams_[i] + 1 == line) {
        streams_[i] = line;
        // Move to MRU.
        std::rotate(streams_.begin(), streams_.begin() + i,
                    streams_.begin() + i + 1);
        // A stream re-arms (pays full latency) at each page boundary.
        return line % lines_per_page != 0;
      }
    }
    // New stream displaces the LRU tracker.
    std::rotate(streams_.begin(), streams_.end() - 1, streams_.end());
    streams_[0] = line;
    return false;
  }

 private:
  std::array<Addr, 8> streams_{};
};

/// Aggregate hit counts per level, for machine-wide reporting. A
/// point-in-time view assembled from this machine's registry counters
/// (`sim.accesses{level=...}`, `sim.tlb_misses`, `sim.prefetched`).
struct MemLevelStats {
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l3_hits = 0;
  std::uint64_t local_dram = 0;
  std::uint64_t remote_dram = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t prefetched = 0;
  std::uint64_t total() const {
    return l1_hits + l2_hits + l3_hits + local_dram + remote_dram;
  }
};

class MemorySystem {
 public:
  explicit MemorySystem(const MachineConfig& cfg);

  /// Resolves one access by `core` at thread-local time `now`.
  AccessResult access(CoreId core, Addr addr, bool is_store, Cycles now);

  /// Epoch-sharded variant of access() (rt's sharded backend): the cache
  /// walk, prefetcher consult, and *same-socket* DRAM fills resolve
  /// immediately against socket-private state; an access whose page is
  /// homed on another socket — or not homed at all (first touch must bind
  /// in one global order) — returns `result.deferred == true` with `*out`
  /// filled for later resolve_deferred(). Deferred accesses charge no
  /// latency at issue; the full latency is computed at the barrier.
  /// Concurrency: callers on cores of *distinct sockets* may overlap; the
  /// page table is only read (no first touches happen mid-epoch).
  AccessResult access_sharded(CoreId core, Addr addr, bool is_store,
                              Cycles now, DeferredAccess* out);

  /// Resolves one deferred access at an epoch barrier: binds the page
  /// (first touch), pays the home DRAM controller at the access's issue
  /// time, and returns the full AccessResult (TLB walk included, as the
  /// immediate path charges it). Callers present accesses in canonical
  /// (socket, thread, issue) order, single-threaded — that order *is*
  /// the reproducible global order of shared state.
  AccessResult resolve_deferred(const DeferredAccess& d);

  PageTable& page_table() { return page_table_; }
  const PageTable& page_table() const { return page_table_; }

  /// What-if override table (empty in normal runs). Entries patch the
  /// covered pages' placement at first touch and their DRAM cost at the
  /// home lookup; see sim/override.h. Mutate at quiescent points only —
  /// under the epoch-sharded backend every overridden access defers to
  /// the barrier, so the table itself is read-only mid-epoch.
  OverrideMap& overrides() { return overrides_; }
  const OverrideMap& overrides() const { return overrides_; }
  MemLevelStats stats() const;
  const DramController& controller(NodeId node) const {
    return controllers_[static_cast<std::size_t>(node)];
  }

  /// Drops all cached state (not page placements). Useful between phases.
  void flush_caches();

 private:
  /// TLB + L1/L2/L3 walk shared by access() and access_sharded(); fills
  /// caches on miss. Returns true when a cache satisfied the access (`r`
  /// is complete); false when it falls through to DRAM (`r` carries the
  /// TLB outcome and walk latency so far). With `skip_tlb` the TLB is
  /// bypassed entirely — not consulted, not charged, not filled — used
  /// for latency-overridden accesses, whose modeled fix shrinks the
  /// variable's translation footprint to nothing (so other variables'
  /// entries survive instead of being thrashed).
  bool walk_caches(CoreId core, Addr addr, bool is_store, AccessResult& r,
                   bool skip_tlb);
  /// Consults (and trains) `core`'s stream prefetcher for a DRAM fill of
  /// `addr`. Config-gated; called once per fill, in issue order.
  bool consult_prefetcher(CoreId core, Addr addr);
  /// The DRAM leg: pays the home controller at `now`, applies the
  /// latency formula for `prefetched`, sets level + telemetry. `ov` (may
  /// be null) is the what-if override covering this address, applied
  /// before any cost is charged.
  void finish_dram(Addr addr, NodeId home, NodeId toucher, bool prefetched,
                   Cycles now, AccessResult& r, const OverrideEntry* ov);
  /// Binds the page of `addr` honouring a placement override's forced
  /// interleaving; plain first-touch semantics when `ov` is null.
  NodeId touch_page(Addr addr, NodeId toucher, const OverrideEntry* ov);

  MachineConfig cfg_;
  std::vector<SetAssocCache> l1_;   // per core
  std::vector<SetAssocCache> l2_;   // per core
  std::vector<SetAssocCache> l3_;   // per socket
  std::vector<Tlb> tlbs_;           // per core
  std::vector<StreamPrefetcher> prefetchers_;  // per core
  std::vector<DramController> controllers_;  // per NUMA node
  PageTable page_table_;
  OverrideMap overrides_;

  // Registry-backed level counts (this instance's private cells; the
  // global registry additionally sums them machine-wide).
  struct Telemetry {
    obs::Counter l1, l2, l3, local_dram, remote_dram, tlb_misses, prefetched;
  };
  Telemetry tm_;
};

}  // namespace dcprof::sim
