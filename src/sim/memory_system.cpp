#include "sim/memory_system.h"

namespace dcprof::sim {

MemorySystem::MemorySystem(const MachineConfig& cfg)
    : cfg_(cfg), page_table_(cfg.page_bytes, cfg.num_nodes()),
      overrides_(cfg.page_bytes) {
  obs::Registry& reg = obs::Registry::global();
  tm_.l1 = reg.counter("sim.accesses", {{"level", "l1"}});
  tm_.l2 = reg.counter("sim.accesses", {{"level", "l2"}});
  tm_.l3 = reg.counter("sim.accesses", {{"level", "l3"}});
  tm_.local_dram = reg.counter("sim.accesses", {{"level", "local_dram"}});
  tm_.remote_dram = reg.counter("sim.accesses", {{"level", "remote_dram"}});
  tm_.tlb_misses = reg.counter("sim.tlb_misses");
  tm_.prefetched = reg.counter("sim.prefetched");
  const int cores = cfg_.num_cores();
  l1_.reserve(static_cast<std::size_t>(cores));
  l2_.reserve(static_cast<std::size_t>(cores));
  tlbs_.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    l1_.emplace_back(cfg_.l1);
    l2_.emplace_back(cfg_.l2);
    tlbs_.emplace_back(cfg_.tlb_entries, cfg_.page_bytes);
    prefetchers_.emplace_back();
  }
  for (int s = 0; s < cfg_.sockets; ++s) l3_.emplace_back(cfg_.l3);
  for (int n = 0; n < cfg_.num_nodes(); ++n) {
    controllers_.emplace_back(cfg_.lat.dram_service, cfg_.lat.dram_banks);
  }
}

bool MemorySystem::walk_caches(CoreId core, Addr addr, bool is_store,
                               AccessResult& r, bool skip_tlb) {
  const auto ci = static_cast<std::size_t>(core);
  if (!skip_tlb) {
    const bool tlb_hit = tlbs_[ci].access(addr);
    r.tlb_miss = !tlb_hit;
    if (r.tlb_miss) {
      r.latency += cfg_.lat.tlb_walk;
      tm_.tlb_misses.inc();
    }
  }

  if (l1_[ci].access(addr)) {
    // Store hits drain through the store buffer without a stall.
    r.latency += is_store ? cfg_.lat.store_hit : cfg_.lat.l1;
    r.level = MemLevel::kL1;
    tm_.l1.inc();
    return true;
  }
  if (l2_[ci].access(addr)) {
    r.latency += cfg_.lat.l2;
    r.level = MemLevel::kL2;
    tm_.l2.inc();
    return true;
  }
  const auto si = static_cast<std::size_t>(cfg_.socket_of(core));
  if (l3_[si].access(addr)) {
    r.latency += cfg_.lat.l3;
    r.level = MemLevel::kL3;
    tm_.l3.inc();
    return true;
  }
  return false;
}

bool MemorySystem::consult_prefetcher(CoreId core, Addr addr) {
  if (!cfg_.lat.prefetch_enabled) return false;
  const Addr line = addr / cfg_.l1.line_bytes;
  const auto lines_per_page =
      static_cast<unsigned>(cfg_.page_bytes / cfg_.l1.line_bytes);
  return prefetchers_[static_cast<std::size_t>(core)].access(line,
                                                             lines_per_page);
}

NodeId MemorySystem::touch_page(Addr addr, NodeId toucher,
                                const OverrideEntry* ov) {
  if (ov != nullptr && ov->placement == PlacementOverride::kInterleave) {
    const PlacementPolicy forced = PlacementPolicy::kInterleave;
    return page_table_.touch(addr, toucher, &forced);
  }
  return page_table_.touch(addr, toucher);
}

void MemorySystem::finish_dram(Addr addr, NodeId home, NodeId toucher,
                               bool prefetched, Cycles now, AccessResult& r,
                               const OverrideEntry* ov) {
  (void)addr;
  if (ov != nullptr) {
    if (ov->latency == LatencyOverride::kZero) {
      // Oracle bound: the fill costs nothing — no DRAM time, no
      // controller bandwidth (the TLB was bypassed in walk_caches).
      r.latency = 0;
      r.prefetched = false;
      r.home = home;
      r.level = MemLevel::kL3;
      tm_.l3.inc();
      return;
    }
    if (ov->placement == PlacementOverride::kLocal) {
      // Perfect placement: the fill is served by the toucher's own
      // controller regardless of where first touch bound the page.
      home = toucher;
    }
    if (ov->latency == LatencyOverride::kNextLevel) {
      if (home == toucher) {
        // Local DRAM promoted to an L3 hit. (The TLB walk was never
        // charged: a layout fix that achieves this also restores
        // translation locality, so walk_caches bypassed the TLB.)
        r.latency += cfg_.lat.l3;
        r.prefetched = false;
        r.home = home;
        r.level = MemLevel::kL3;
        tm_.l3.inc();
        return;
      }
      // Remote DRAM promoted one level: costs a local fill, served by
      // the toucher's controller.
      home = toucher;
    }
  }
  r.home = home;
  const bool remote = home != toucher;
  r.queue_wait = controllers_[static_cast<std::size_t>(home)].serve(now);
  r.prefetched = prefetched;
  if (prefetched) {
    // The stream prefetcher hid most of the fill; the access still
    // consumed controller bandwidth (the serve() above).
    r.latency += cfg_.lat.prefetch_hit + r.queue_wait +
                 (remote ? cfg_.lat.prefetch_remote_extra : 0);
    tm_.prefetched.inc();
  } else {
    r.latency += cfg_.lat.l3 + cfg_.lat.dram + r.queue_wait +
                 (remote ? cfg_.lat.remote_extra : 0);
  }
  if (remote) {
    r.level = MemLevel::kRemoteDram;
    tm_.remote_dram.inc();
  } else {
    r.level = MemLevel::kLocalDram;
    tm_.local_dram.inc();
  }
}

AccessResult MemorySystem::access(CoreId core, Addr addr, bool is_store,
                                  Cycles now) {
  AccessResult r;
  const OverrideEntry* ov =
      overrides_.empty() ? nullptr : overrides_.lookup(addr);
  const bool skip_tlb = ov != nullptr && ov->latency != LatencyOverride::kNone;
  if (walk_caches(core, addr, is_store, r, skip_tlb)) return r;
  // DRAM fill: bind the page (first touch) and pay the home controller.
  const NodeId toucher = cfg_.node_of(core);
  const NodeId home = touch_page(addr, toucher, ov);
  const bool prefetched = consult_prefetcher(core, addr);
  finish_dram(addr, home, toucher, prefetched, now, r, ov);
  return r;
}

AccessResult MemorySystem::access_sharded(CoreId core, Addr addr,
                                          bool is_store, Cycles now,
                                          DeferredAccess* out) {
  AccessResult r;
  // Overridden addresses always defer below: a placement override may
  // redirect the fill to another socket's controller, so the only safe
  // point to apply it is the barrier's canonical order. Normal runs
  // (empty table) pay one branch here.
  const OverrideEntry* ov =
      overrides_.empty() ? nullptr : overrides_.lookup(addr);
  const bool skip_tlb = ov != nullptr && ov->latency != LatencyOverride::kNone;
  if (walk_caches(core, addr, is_store, r, skip_tlb)) return r;
  // The prefetcher is core-private: consult it now, in issue order, so
  // its training sequence is identical whether the fill resolves
  // immediately or at the barrier.
  const bool prefetched = consult_prefetcher(core, addr);
  const NodeId toucher = cfg_.node_of(core);
  // Read-only probe: no page may be bound mid-epoch (first touch is
  // order-dependent shared state), so concurrent socket shards can all
  // read the table safely.
  const NodeId home = page_table_.node_of(addr);
  const bool overridden = ov != nullptr;
  if (!overridden && home != kNoNode &&
      cfg_.socket_of_node(home) == cfg_.socket_of(core)) {
    // The home controller belongs to this core's socket: socket-private
    // during the epoch, serve immediately (remote_extra still applies if
    // the socket spans multiple NUMA nodes).
    finish_dram(addr, home, toucher, prefetched, now, r, nullptr);
    return r;
  }
  // Cross-socket (or unhomed) fill: queue for the epoch barrier. No
  // latency is charged at issue; resolve_deferred computes all of it
  // (TLB walk included) so one clock bump per thread settles the epoch.
  out->core = core;
  out->addr = addr;
  out->is_store = is_store;
  out->tlb_miss = r.tlb_miss;
  out->prefetched = prefetched;
  out->first_touch = home == kNoNode;
  out->issued_at = now;
  r.latency = 0;
  r.deferred = true;
  return r;
}

AccessResult MemorySystem::resolve_deferred(const DeferredAccess& d) {
  AccessResult r;
  r.tlb_miss = d.tlb_miss;
  if (d.tlb_miss) r.latency += cfg_.lat.tlb_walk;
  const NodeId toucher = cfg_.node_of(d.core);
  const OverrideEntry* ov =
      overrides_.empty() ? nullptr : overrides_.lookup(d.addr);
  const NodeId home = touch_page(d.addr, toucher, ov);
  finish_dram(d.addr, home, toucher, d.prefetched, d.issued_at, r, ov);
  return r;
}

MemLevelStats MemorySystem::stats() const {
  MemLevelStats s;
  s.l1_hits = tm_.l1.value();
  s.l2_hits = tm_.l2.value();
  s.l3_hits = tm_.l3.value();
  s.local_dram = tm_.local_dram.value();
  s.remote_dram = tm_.remote_dram.value();
  s.tlb_misses = tm_.tlb_misses.value();
  s.prefetched = tm_.prefetched.value();
  return s;
}

void MemorySystem::flush_caches() {
  for (auto& c : l1_) c.clear();
  for (auto& c : l2_) c.clear();
  for (auto& c : l3_) c.clear();
  for (auto& t : tlbs_) t.clear();
}

}  // namespace dcprof::sim
