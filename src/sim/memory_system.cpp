#include "sim/memory_system.h"

namespace dcprof::sim {

MemorySystem::MemorySystem(const MachineConfig& cfg)
    : cfg_(cfg), page_table_(cfg.page_bytes, cfg.num_nodes()) {
  const int cores = cfg_.num_cores();
  l1_.reserve(static_cast<std::size_t>(cores));
  l2_.reserve(static_cast<std::size_t>(cores));
  tlbs_.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    l1_.emplace_back(cfg_.l1);
    l2_.emplace_back(cfg_.l2);
    tlbs_.emplace_back(cfg_.tlb_entries, cfg_.page_bytes);
    prefetchers_.emplace_back();
  }
  for (int s = 0; s < cfg_.sockets; ++s) l3_.emplace_back(cfg_.l3);
  for (int n = 0; n < cfg_.num_nodes(); ++n) {
    controllers_.emplace_back(cfg_.lat.dram_service, cfg_.lat.dram_banks);
  }
}

AccessResult MemorySystem::access(CoreId core, Addr addr, bool is_store,
                                  Cycles now) {
  AccessResult r;
  const auto ci = static_cast<std::size_t>(core);

  const bool tlb_hit = tlbs_[ci].access(addr);
  r.tlb_miss = !tlb_hit;
  if (r.tlb_miss) {
    r.latency += cfg_.lat.tlb_walk;
    ++stats_.tlb_misses;
  }

  if (l1_[ci].access(addr)) {
    // Store hits drain through the store buffer without a stall.
    r.latency += is_store ? cfg_.lat.store_hit : cfg_.lat.l1;
    r.level = MemLevel::kL1;
    ++stats_.l1_hits;
    return r;
  }
  if (l2_[ci].access(addr)) {
    r.latency += cfg_.lat.l2;
    r.level = MemLevel::kL2;
    ++stats_.l2_hits;
    return r;
  }
  const auto si = static_cast<std::size_t>(cfg_.socket_of(core));
  if (l3_[si].access(addr)) {
    r.latency += cfg_.lat.l3;
    r.level = MemLevel::kL3;
    ++stats_.l3_hits;
    return r;
  }

  // DRAM fill: bind the page (first touch) and pay the home controller.
  const NodeId toucher = cfg_.node_of(core);
  const NodeId home = page_table_.touch(addr, toucher);
  r.home = home;
  const bool remote = home != toucher;
  r.queue_wait = controllers_[static_cast<std::size_t>(home)].serve(now);
  const Addr line = addr / cfg_.l1.line_bytes;
  const auto lines_per_page =
      static_cast<unsigned>(cfg_.page_bytes / cfg_.l1.line_bytes);
  r.prefetched = cfg_.lat.prefetch_enabled &&
                 prefetchers_[ci].access(line, lines_per_page);
  if (r.prefetched) {
    // The stream prefetcher hid most of the fill; the access still
    // consumed controller bandwidth (the serve() above).
    r.latency += cfg_.lat.prefetch_hit + r.queue_wait +
                 (remote ? cfg_.lat.prefetch_remote_extra : 0);
    ++stats_.prefetched;
  } else {
    r.latency += cfg_.lat.l3 + cfg_.lat.dram + r.queue_wait +
                 (remote ? cfg_.lat.remote_extra : 0);
  }
  if (remote) {
    r.level = MemLevel::kRemoteDram;
    ++stats_.remote_dram;
  } else {
    r.level = MemLevel::kLocalDram;
    ++stats_.local_dram;
  }
  return r;
}

void MemorySystem::flush_caches() {
  for (auto& c : l1_) c.clear();
  for (auto& c : l2_) c.clear();
  for (auto& c : l3_) c.clear();
  for (auto& t : tlbs_) t.clear();
}

}  // namespace dcprof::sim
