// Segmented simulated address space with a real free-list heap allocator.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/types.h"

namespace dcprof::sim {

/// Fixed layout of the simulated virtual address space.
inline constexpr Addr kTextBase = 0x0000'0000'0040'0000ull;
inline constexpr Addr kStaticBase = 0x0000'0000'1000'0000ull;
inline constexpr Addr kBrkBase = 0x0000'6000'0000'0000ull;
inline constexpr Addr kHeapBase = 0x0000'7f00'0000'0000ull;
inline constexpr Addr kHeapLimit = 0x0000'7fff'0000'0000ull;
inline constexpr Addr kStackBase = 0x0000'8000'0000'0000ull;

/// Manages segment reservation (text/static/stack) and heap blocks.
/// Heap allocation is first-fit over a coalescing free list, so freed
/// address ranges are genuinely reused — the property the profiler's
/// interval map must survive.
class AddressSpace {
 public:
  AddressSpace();

  /// Reserves `size` bytes of static data (e.g. one load module's .bss).
  /// Returns the segment base. Alignment is 64 bytes.
  Addr reserve_static(std::uint64_t size, const std::string& name);

  /// Reserves a text range for a load module.
  Addr reserve_text(std::uint64_t size, const std::string& name);

  /// Finds a static segment by name — either the full registered name
  /// ("exe:f_elem") or the bare variable name after the last ':'. Returns
  /// {base, size} of the first match in address order. The what-if
  /// engine uses this to turn a static variable's name back into the
  /// page range its override must cover.
  std::optional<std::pair<Addr, std::uint64_t>> find_static(
      const std::string& name) const;

  /// Per-thread stack segment base (stacks are 1 MiB apart, grow up here).
  Addr stack_base(ThreadId tid) const;

  /// Allocates `size` heap bytes; throws std::bad_alloc on exhaustion.
  Addr heap_alloc(std::uint64_t size);

  /// Frees a block previously returned by heap_alloc; throws
  /// std::invalid_argument on a bad pointer. Returns the block size.
  std::uint64_t heap_free(Addr addr);

  /// Size of the live block at `addr`, if any.
  std::optional<std::uint64_t> block_size(Addr addr) const;

  /// Extends the program break by `size` bytes and returns the previous
  /// break (the sbrk(2) contract). Growth only; no free list. This is
  /// the allocation path C++ template containers took in the paper —
  /// invisible to malloc wrappers, hence attributed as unknown data.
  Addr brk_extend(std::uint64_t size);
  Addr brk() const { return brk_; }

  std::uint64_t heap_bytes_in_use() const { return heap_in_use_; }
  std::size_t heap_live_blocks() const { return allocated_.size(); }

 private:
  struct Segment {
    Addr base;
    std::uint64_t size;
    std::string name;
  };

  Addr next_static_;
  Addr next_text_;
  Addr brk_ = kBrkBase;
  std::map<Addr, Segment> static_segments_;
  std::map<Addr, Segment> text_segments_;

  std::map<Addr, std::uint64_t> free_list_;  // base -> size, coalesced
  std::unordered_map<Addr, std::uint64_t> allocated_;
  std::uint64_t heap_in_use_ = 0;
};

}  // namespace dcprof::sim
