// Configuration of the simulated multi-socket NUMA machine.
#pragma once

#include <cstddef>

#include "sim/types.h"

namespace dcprof::sim {

/// Geometry of one set-associative cache.
struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  unsigned associativity = 8;
  unsigned line_bytes = 64;
};

/// Access latencies (cycles) for each level, plus DRAM controller occupancy.
struct LatencyConfig {
  Cycles l1 = 4;
  /// Stores that hit L1 retire through the store buffer without
  /// stalling the pipeline.
  Cycles store_hit = 1;
  Cycles l2 = 12;
  Cycles l3 = 40;
  Cycles dram = 120;          ///< row access once the controller picks it up
  Cycles remote_extra = 110;  ///< added interconnect hop cost for remote DRAM
  Cycles tlb_walk = 30;       ///< page-walk penalty on a TLB miss
  Cycles dram_service = 64;   ///< bank occupancy per DRAM access
  unsigned dram_banks = 2;    ///< parallel banks per controller
  /// Latency observed when a hardware stream prefetcher hid (most of)
  /// a DRAM fill. Strided access defeats the prefetcher — the effect
  /// the paper's Sweep3D study hinges on.
  Cycles prefetch_hit = 40;
  /// Residual interconnect cost of a prefetched *remote* fill (a deep
  /// prefetcher hides most of the hop; bandwidth is paid via the
  /// controller queue).
  Cycles prefetch_remote_extra = 8;
  /// Disables the stream prefetchers entirely (model ablation).
  bool prefetch_enabled = true;
};

/// Whole-machine geometry. Defaults resemble the paper's 4-socket testbeds.
struct MachineConfig {
  int sockets = 4;
  int cores_per_socket = 4;
  int numa_nodes_per_socket = 1;  ///< Magny-Cours-style split dies use 2

  CacheConfig l1{32 * 1024, 8, 64};
  CacheConfig l2{512 * 1024, 8, 64};
  CacheConfig l3{8 * 1024 * 1024, 16, 64};
  LatencyConfig lat;

  unsigned tlb_entries = 64;
  std::size_t page_bytes = 4096;

  int num_cores() const { return sockets * cores_per_socket; }
  int num_nodes() const { return sockets * numa_nodes_per_socket; }
  int socket_of(CoreId core) const { return core / cores_per_socket; }
  /// Socket whose package hosts NUMA node `node` (its memory controller
  /// is socket-private state in the epoch-sharded backend).
  int socket_of_node(NodeId node) const { return node / numa_nodes_per_socket; }
  /// NUMA node directly attached to `core`.
  NodeId node_of(CoreId core) const {
    const int within = core % cores_per_socket;
    const int local = within * numa_nodes_per_socket / cores_per_socket;
    return socket_of(core) * numa_nodes_per_socket + local;
  }
};

}  // namespace dcprof::sim
