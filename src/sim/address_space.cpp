#include "sim/address_space.h"

#include <new>
#include <stdexcept>

namespace dcprof::sim {

namespace {
constexpr std::uint64_t kAlign = 64;
std::uint64_t round_up(std::uint64_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }
}  // namespace

AddressSpace::AddressSpace()
    : next_static_(kStaticBase), next_text_(kTextBase) {
  free_list_.emplace(kHeapBase, kHeapLimit - kHeapBase);
}

Addr AddressSpace::reserve_static(std::uint64_t size, const std::string& name) {
  const Addr base = next_static_;
  next_static_ += round_up(size);
  static_segments_.emplace(base, Segment{base, size, name});
  return base;
}

std::optional<std::pair<Addr, std::uint64_t>> AddressSpace::find_static(
    const std::string& name) const {
  for (const auto& [base, seg] : static_segments_) {
    if (seg.name == name) return std::make_pair(seg.base, seg.size);
    const auto colon = seg.name.rfind(':');
    if (colon != std::string::npos && seg.name.compare(colon + 1,
                                                       std::string::npos,
                                                       name) == 0) {
      return std::make_pair(seg.base, seg.size);
    }
  }
  return std::nullopt;
}

Addr AddressSpace::reserve_text(std::uint64_t size, const std::string& name) {
  const Addr base = next_text_;
  next_text_ += round_up(size);
  text_segments_.emplace(base, Segment{base, size, name});
  return base;
}

Addr AddressSpace::stack_base(ThreadId tid) const {
  return kStackBase + static_cast<Addr>(tid) * (1ull << 20);
}

Addr AddressSpace::heap_alloc(std::uint64_t size) {
  if (size == 0) size = 1;
  size = round_up(size);
  // First fit.
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= size) {
      const Addr base = it->first;
      const std::uint64_t remaining = it->second - size;
      free_list_.erase(it);
      if (remaining > 0) free_list_.emplace(base + size, remaining);
      allocated_.emplace(base, size);
      heap_in_use_ += size;
      return base;
    }
  }
  throw std::bad_alloc();
}

std::uint64_t AddressSpace::heap_free(Addr addr) {
  auto it = allocated_.find(addr);
  if (it == allocated_.end()) {
    throw std::invalid_argument("heap_free: not an allocated block");
  }
  const std::uint64_t size = it->second;
  allocated_.erase(it);
  heap_in_use_ -= size;

  // Insert into the free list, coalescing with neighbours.
  auto [pos, inserted] = free_list_.emplace(addr, size);
  (void)inserted;
  // Coalesce with successor.
  auto next = std::next(pos);
  if (next != free_list_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_list_.erase(next);
  }
  // Coalesce with predecessor.
  if (pos != free_list_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_list_.erase(pos);
    }
  }
  return size;
}

Addr AddressSpace::brk_extend(std::uint64_t size) {
  const Addr old = brk_;
  brk_ += round_up(size);
  if (brk_ >= kHeapBase) throw std::bad_alloc();
  return old;
}

std::optional<std::uint64_t> AddressSpace::block_size(Addr addr) const {
  auto it = allocated_.find(addr);
  if (it == allocated_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dcprof::sim
