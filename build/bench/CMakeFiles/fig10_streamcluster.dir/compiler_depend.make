# Empty compiler generated dependencies file for fig10_streamcluster.
# This may be replaced when dependencies are built.
