file(REMOVE_RECURSE
  "CMakeFiles/fig10_streamcluster.dir/fig10_streamcluster.cpp.o"
  "CMakeFiles/fig10_streamcluster.dir/fig10_streamcluster.cpp.o.d"
  "fig10_streamcluster"
  "fig10_streamcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_streamcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
