# Empty dependencies file for fig1_decomposition.
# This may be replaced when dependencies are built.
