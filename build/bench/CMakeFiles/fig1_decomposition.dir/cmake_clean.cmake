file(REMOVE_RECURSE
  "CMakeFiles/fig1_decomposition.dir/fig1_decomposition.cpp.o"
  "CMakeFiles/fig1_decomposition.dir/fig1_decomposition.cpp.o.d"
  "fig1_decomposition"
  "fig1_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
