file(REMOVE_RECURSE
  "CMakeFiles/fig6_sweep3d_vars.dir/fig6_sweep3d_vars.cpp.o"
  "CMakeFiles/fig6_sweep3d_vars.dir/fig6_sweep3d_vars.cpp.o.d"
  "fig6_sweep3d_vars"
  "fig6_sweep3d_vars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sweep3d_vars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
