# Empty dependencies file for fig6_sweep3d_vars.
# This may be replaced when dependencies are built.
