file(REMOVE_RECURSE
  "CMakeFiles/fig8_lulesh_heap.dir/fig8_lulesh_heap.cpp.o"
  "CMakeFiles/fig8_lulesh_heap.dir/fig8_lulesh_heap.cpp.o.d"
  "fig8_lulesh_heap"
  "fig8_lulesh_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lulesh_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
