# Empty compiler generated dependencies file for fig8_lulesh_heap.
# This may be replaced when dependencies are built.
