file(REMOVE_RECURSE
  "CMakeFiles/ablation_alloc_tracking.dir/ablation_alloc_tracking.cpp.o"
  "CMakeFiles/ablation_alloc_tracking.dir/ablation_alloc_tracking.cpp.o.d"
  "ablation_alloc_tracking"
  "ablation_alloc_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alloc_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
