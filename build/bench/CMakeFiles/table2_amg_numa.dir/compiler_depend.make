# Empty compiler generated dependencies file for table2_amg_numa.
# This may be replaced when dependencies are built.
