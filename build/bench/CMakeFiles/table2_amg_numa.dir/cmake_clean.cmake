file(REMOVE_RECURSE
  "CMakeFiles/table2_amg_numa.dir/table2_amg_numa.cpp.o"
  "CMakeFiles/table2_amg_numa.dir/table2_amg_numa.cpp.o.d"
  "table2_amg_numa"
  "table2_amg_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_amg_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
