file(REMOVE_RECURSE
  "CMakeFiles/fig4_amg_topdown.dir/fig4_amg_topdown.cpp.o"
  "CMakeFiles/fig4_amg_topdown.dir/fig4_amg_topdown.cpp.o.d"
  "fig4_amg_topdown"
  "fig4_amg_topdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_amg_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
