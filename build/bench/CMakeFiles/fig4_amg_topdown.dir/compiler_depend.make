# Empty compiler generated dependencies file for fig4_amg_topdown.
# This may be replaced when dependencies are built.
