# Empty dependencies file for fig11_nw.
# This may be replaced when dependencies are built.
