file(REMOVE_RECURSE
  "CMakeFiles/fig11_nw.dir/fig11_nw.cpp.o"
  "CMakeFiles/fig11_nw.dir/fig11_nw.cpp.o.d"
  "fig11_nw"
  "fig11_nw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_nw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
