# Empty compiler generated dependencies file for fig5_amg_bottomup.
# This may be replaced when dependencies are built.
