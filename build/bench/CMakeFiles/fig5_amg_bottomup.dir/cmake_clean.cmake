file(REMOVE_RECURSE
  "CMakeFiles/fig5_amg_bottomup.dir/fig5_amg_bottomup.cpp.o"
  "CMakeFiles/fig5_amg_bottomup.dir/fig5_amg_bottomup.cpp.o.d"
  "fig5_amg_bottomup"
  "fig5_amg_bottomup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_amg_bottomup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
