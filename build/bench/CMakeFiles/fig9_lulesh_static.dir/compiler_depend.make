# Empty compiler generated dependencies file for fig9_lulesh_static.
# This may be replaced when dependencies are built.
