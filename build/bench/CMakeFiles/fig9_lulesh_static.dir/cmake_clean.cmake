file(REMOVE_RECURSE
  "CMakeFiles/fig9_lulesh_static.dir/fig9_lulesh_static.cpp.o"
  "CMakeFiles/fig9_lulesh_static.dir/fig9_lulesh_static.cpp.o.d"
  "fig9_lulesh_static"
  "fig9_lulesh_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_lulesh_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
