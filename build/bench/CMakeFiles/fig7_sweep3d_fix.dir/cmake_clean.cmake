file(REMOVE_RECURSE
  "CMakeFiles/fig7_sweep3d_fix.dir/fig7_sweep3d_fix.cpp.o"
  "CMakeFiles/fig7_sweep3d_fix.dir/fig7_sweep3d_fix.cpp.o.d"
  "fig7_sweep3d_fix"
  "fig7_sweep3d_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sweep3d_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
