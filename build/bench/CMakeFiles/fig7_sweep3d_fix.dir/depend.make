# Empty dependencies file for fig7_sweep3d_fix.
# This may be replaced when dependencies are built.
