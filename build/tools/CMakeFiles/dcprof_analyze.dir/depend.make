# Empty dependencies file for dcprof_analyze.
# This may be replaced when dependencies are built.
