file(REMOVE_RECURSE
  "CMakeFiles/dcprof_analyze.dir/dcprof_analyze.cpp.o"
  "CMakeFiles/dcprof_analyze.dir/dcprof_analyze.cpp.o.d"
  "dcprof_analyze"
  "dcprof_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcprof_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
