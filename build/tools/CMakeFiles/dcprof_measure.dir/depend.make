# Empty dependencies file for dcprof_measure.
# This may be replaced when dependencies are built.
