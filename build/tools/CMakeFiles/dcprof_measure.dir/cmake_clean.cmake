file(REMOVE_RECURSE
  "CMakeFiles/dcprof_measure.dir/dcprof_measure.cpp.o"
  "CMakeFiles/dcprof_measure.dir/dcprof_measure.cpp.o.d"
  "dcprof_measure"
  "dcprof_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcprof_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
