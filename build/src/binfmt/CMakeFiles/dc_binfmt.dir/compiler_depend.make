# Empty compiler generated dependencies file for dc_binfmt.
# This may be replaced when dependencies are built.
