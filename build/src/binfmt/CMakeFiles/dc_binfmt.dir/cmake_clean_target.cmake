file(REMOVE_RECURSE
  "libdc_binfmt.a"
)
