file(REMOVE_RECURSE
  "CMakeFiles/dc_binfmt.dir/load_module.cpp.o"
  "CMakeFiles/dc_binfmt.dir/load_module.cpp.o.d"
  "CMakeFiles/dc_binfmt.dir/structure.cpp.o"
  "CMakeFiles/dc_binfmt.dir/structure.cpp.o.d"
  "libdc_binfmt.a"
  "libdc_binfmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_binfmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
