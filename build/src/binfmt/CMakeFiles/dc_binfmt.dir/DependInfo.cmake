
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binfmt/load_module.cpp" "src/binfmt/CMakeFiles/dc_binfmt.dir/load_module.cpp.o" "gcc" "src/binfmt/CMakeFiles/dc_binfmt.dir/load_module.cpp.o.d"
  "/root/repo/src/binfmt/structure.cpp" "src/binfmt/CMakeFiles/dc_binfmt.dir/structure.cpp.o" "gcc" "src/binfmt/CMakeFiles/dc_binfmt.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
