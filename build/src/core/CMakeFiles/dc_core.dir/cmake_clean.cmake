file(REMOVE_RECURSE
  "CMakeFiles/dc_core.dir/alloc_tracker.cpp.o"
  "CMakeFiles/dc_core.dir/alloc_tracker.cpp.o.d"
  "CMakeFiles/dc_core.dir/cct.cpp.o"
  "CMakeFiles/dc_core.dir/cct.cpp.o.d"
  "CMakeFiles/dc_core.dir/measurement.cpp.o"
  "CMakeFiles/dc_core.dir/measurement.cpp.o.d"
  "CMakeFiles/dc_core.dir/metrics.cpp.o"
  "CMakeFiles/dc_core.dir/metrics.cpp.o.d"
  "CMakeFiles/dc_core.dir/profile.cpp.o"
  "CMakeFiles/dc_core.dir/profile.cpp.o.d"
  "CMakeFiles/dc_core.dir/profiler.cpp.o"
  "CMakeFiles/dc_core.dir/profiler.cpp.o.d"
  "CMakeFiles/dc_core.dir/trace.cpp.o"
  "CMakeFiles/dc_core.dir/trace.cpp.o.d"
  "CMakeFiles/dc_core.dir/var_map.cpp.o"
  "CMakeFiles/dc_core.dir/var_map.cpp.o.d"
  "libdc_core.a"
  "libdc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
