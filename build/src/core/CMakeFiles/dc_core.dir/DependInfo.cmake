
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alloc_tracker.cpp" "src/core/CMakeFiles/dc_core.dir/alloc_tracker.cpp.o" "gcc" "src/core/CMakeFiles/dc_core.dir/alloc_tracker.cpp.o.d"
  "/root/repo/src/core/cct.cpp" "src/core/CMakeFiles/dc_core.dir/cct.cpp.o" "gcc" "src/core/CMakeFiles/dc_core.dir/cct.cpp.o.d"
  "/root/repo/src/core/measurement.cpp" "src/core/CMakeFiles/dc_core.dir/measurement.cpp.o" "gcc" "src/core/CMakeFiles/dc_core.dir/measurement.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/dc_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/dc_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/dc_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/dc_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/core/CMakeFiles/dc_core.dir/profiler.cpp.o" "gcc" "src/core/CMakeFiles/dc_core.dir/profiler.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/dc_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/dc_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/var_map.cpp" "src/core/CMakeFiles/dc_core.dir/var_map.cpp.o" "gcc" "src/core/CMakeFiles/dc_core.dir/var_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/binfmt/CMakeFiles/dc_binfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/dc_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/dc_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
