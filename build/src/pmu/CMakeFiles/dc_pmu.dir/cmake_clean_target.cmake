file(REMOVE_RECURSE
  "libdc_pmu.a"
)
