file(REMOVE_RECURSE
  "CMakeFiles/dc_pmu.dir/pmu.cpp.o"
  "CMakeFiles/dc_pmu.dir/pmu.cpp.o.d"
  "libdc_pmu.a"
  "libdc_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
