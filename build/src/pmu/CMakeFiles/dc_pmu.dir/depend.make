# Empty dependencies file for dc_pmu.
# This may be replaced when dependencies are built.
