
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/alloc.cpp" "src/rt/CMakeFiles/dc_rt.dir/alloc.cpp.o" "gcc" "src/rt/CMakeFiles/dc_rt.dir/alloc.cpp.o.d"
  "/root/repo/src/rt/cluster.cpp" "src/rt/CMakeFiles/dc_rt.dir/cluster.cpp.o" "gcc" "src/rt/CMakeFiles/dc_rt.dir/cluster.cpp.o.d"
  "/root/repo/src/rt/team.cpp" "src/rt/CMakeFiles/dc_rt.dir/team.cpp.o" "gcc" "src/rt/CMakeFiles/dc_rt.dir/team.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/binfmt/CMakeFiles/dc_binfmt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
