file(REMOVE_RECURSE
  "libdc_rt.a"
)
