# Empty compiler generated dependencies file for dc_rt.
# This may be replaced when dependencies are built.
