file(REMOVE_RECURSE
  "CMakeFiles/dc_rt.dir/alloc.cpp.o"
  "CMakeFiles/dc_rt.dir/alloc.cpp.o.d"
  "CMakeFiles/dc_rt.dir/cluster.cpp.o"
  "CMakeFiles/dc_rt.dir/cluster.cpp.o.d"
  "CMakeFiles/dc_rt.dir/team.cpp.o"
  "CMakeFiles/dc_rt.dir/team.cpp.o.d"
  "libdc_rt.a"
  "libdc_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
