file(REMOVE_RECURSE
  "CMakeFiles/dc_workloads.dir/amg.cpp.o"
  "CMakeFiles/dc_workloads.dir/amg.cpp.o.d"
  "CMakeFiles/dc_workloads.dir/harness.cpp.o"
  "CMakeFiles/dc_workloads.dir/harness.cpp.o.d"
  "CMakeFiles/dc_workloads.dir/lulesh.cpp.o"
  "CMakeFiles/dc_workloads.dir/lulesh.cpp.o.d"
  "CMakeFiles/dc_workloads.dir/nw.cpp.o"
  "CMakeFiles/dc_workloads.dir/nw.cpp.o.d"
  "CMakeFiles/dc_workloads.dir/streamcluster.cpp.o"
  "CMakeFiles/dc_workloads.dir/streamcluster.cpp.o.d"
  "CMakeFiles/dc_workloads.dir/sweep3d.cpp.o"
  "CMakeFiles/dc_workloads.dir/sweep3d.cpp.o.d"
  "libdc_workloads.a"
  "libdc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
