file(REMOVE_RECURSE
  "libdc_workloads.a"
)
