# Empty dependencies file for dc_workloads.
# This may be replaced when dependencies are built.
