
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/amg.cpp" "src/workloads/CMakeFiles/dc_workloads.dir/amg.cpp.o" "gcc" "src/workloads/CMakeFiles/dc_workloads.dir/amg.cpp.o.d"
  "/root/repo/src/workloads/harness.cpp" "src/workloads/CMakeFiles/dc_workloads.dir/harness.cpp.o" "gcc" "src/workloads/CMakeFiles/dc_workloads.dir/harness.cpp.o.d"
  "/root/repo/src/workloads/lulesh.cpp" "src/workloads/CMakeFiles/dc_workloads.dir/lulesh.cpp.o" "gcc" "src/workloads/CMakeFiles/dc_workloads.dir/lulesh.cpp.o.d"
  "/root/repo/src/workloads/nw.cpp" "src/workloads/CMakeFiles/dc_workloads.dir/nw.cpp.o" "gcc" "src/workloads/CMakeFiles/dc_workloads.dir/nw.cpp.o.d"
  "/root/repo/src/workloads/streamcluster.cpp" "src/workloads/CMakeFiles/dc_workloads.dir/streamcluster.cpp.o" "gcc" "src/workloads/CMakeFiles/dc_workloads.dir/streamcluster.cpp.o.d"
  "/root/repo/src/workloads/sweep3d.cpp" "src/workloads/CMakeFiles/dc_workloads.dir/sweep3d.cpp.o" "gcc" "src/workloads/CMakeFiles/dc_workloads.dir/sweep3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/dc_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/dc_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/binfmt/CMakeFiles/dc_binfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
