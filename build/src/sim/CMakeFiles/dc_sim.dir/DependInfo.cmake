
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address_space.cpp" "src/sim/CMakeFiles/dc_sim.dir/address_space.cpp.o" "gcc" "src/sim/CMakeFiles/dc_sim.dir/address_space.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/dc_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/dc_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/dc_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/dc_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/dc_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/dc_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/page_table.cpp" "src/sim/CMakeFiles/dc_sim.dir/page_table.cpp.o" "gcc" "src/sim/CMakeFiles/dc_sim.dir/page_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
