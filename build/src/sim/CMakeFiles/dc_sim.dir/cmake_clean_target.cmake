file(REMOVE_RECURSE
  "libdc_sim.a"
)
