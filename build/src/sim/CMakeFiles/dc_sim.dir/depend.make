# Empty dependencies file for dc_sim.
# This may be replaced when dependencies are built.
