file(REMOVE_RECURSE
  "CMakeFiles/dc_sim.dir/address_space.cpp.o"
  "CMakeFiles/dc_sim.dir/address_space.cpp.o.d"
  "CMakeFiles/dc_sim.dir/cache.cpp.o"
  "CMakeFiles/dc_sim.dir/cache.cpp.o.d"
  "CMakeFiles/dc_sim.dir/machine.cpp.o"
  "CMakeFiles/dc_sim.dir/machine.cpp.o.d"
  "CMakeFiles/dc_sim.dir/memory_system.cpp.o"
  "CMakeFiles/dc_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/dc_sim.dir/page_table.cpp.o"
  "CMakeFiles/dc_sim.dir/page_table.cpp.o.d"
  "libdc_sim.a"
  "libdc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
