
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/advisor.cpp" "src/analysis/CMakeFiles/dc_analysis.dir/advisor.cpp.o" "gcc" "src/analysis/CMakeFiles/dc_analysis.dir/advisor.cpp.o.d"
  "/root/repo/src/analysis/derived.cpp" "src/analysis/CMakeFiles/dc_analysis.dir/derived.cpp.o" "gcc" "src/analysis/CMakeFiles/dc_analysis.dir/derived.cpp.o.d"
  "/root/repo/src/analysis/html_report.cpp" "src/analysis/CMakeFiles/dc_analysis.dir/html_report.cpp.o" "gcc" "src/analysis/CMakeFiles/dc_analysis.dir/html_report.cpp.o.d"
  "/root/repo/src/analysis/merge.cpp" "src/analysis/CMakeFiles/dc_analysis.dir/merge.cpp.o" "gcc" "src/analysis/CMakeFiles/dc_analysis.dir/merge.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/dc_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/dc_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/views.cpp" "src/analysis/CMakeFiles/dc_analysis.dir/views.cpp.o" "gcc" "src/analysis/CMakeFiles/dc_analysis.dir/views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/dc_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/dc_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/binfmt/CMakeFiles/dc_binfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
