file(REMOVE_RECURSE
  "CMakeFiles/dc_analysis.dir/advisor.cpp.o"
  "CMakeFiles/dc_analysis.dir/advisor.cpp.o.d"
  "CMakeFiles/dc_analysis.dir/derived.cpp.o"
  "CMakeFiles/dc_analysis.dir/derived.cpp.o.d"
  "CMakeFiles/dc_analysis.dir/html_report.cpp.o"
  "CMakeFiles/dc_analysis.dir/html_report.cpp.o.d"
  "CMakeFiles/dc_analysis.dir/merge.cpp.o"
  "CMakeFiles/dc_analysis.dir/merge.cpp.o.d"
  "CMakeFiles/dc_analysis.dir/report.cpp.o"
  "CMakeFiles/dc_analysis.dir/report.cpp.o.d"
  "CMakeFiles/dc_analysis.dir/views.cpp.o"
  "CMakeFiles/dc_analysis.dir/views.cpp.o.d"
  "libdc_analysis.a"
  "libdc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
