file(REMOVE_RECURSE
  "libdc_analysis.a"
)
