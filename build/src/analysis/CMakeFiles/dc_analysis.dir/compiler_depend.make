# Empty compiler generated dependencies file for dc_analysis.
# This may be replaced when dependencies are built.
