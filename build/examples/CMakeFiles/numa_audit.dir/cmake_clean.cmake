file(REMOVE_RECURSE
  "CMakeFiles/numa_audit.dir/numa_audit.cpp.o"
  "CMakeFiles/numa_audit.dir/numa_audit.cpp.o.d"
  "numa_audit"
  "numa_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
