# Empty compiler generated dependencies file for numa_audit.
# This may be replaced when dependencies are built.
