file(REMOVE_RECURSE
  "CMakeFiles/hybrid_ranks.dir/hybrid_ranks.cpp.o"
  "CMakeFiles/hybrid_ranks.dir/hybrid_ranks.cpp.o.d"
  "hybrid_ranks"
  "hybrid_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
