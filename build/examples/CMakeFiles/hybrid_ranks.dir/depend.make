# Empty dependencies file for hybrid_ranks.
# This may be replaced when dependencies are built.
