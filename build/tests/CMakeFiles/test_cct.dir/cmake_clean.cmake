file(REMOVE_RECURSE
  "CMakeFiles/test_cct.dir/test_cct.cpp.o"
  "CMakeFiles/test_cct.dir/test_cct.cpp.o.d"
  "test_cct"
  "test_cct.pdb"
  "test_cct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
