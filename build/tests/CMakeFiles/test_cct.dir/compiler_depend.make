# Empty compiler generated dependencies file for test_cct.
# This may be replaced when dependencies are built.
