
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_profile.cpp" "tests/CMakeFiles/test_profile.dir/test_profile.cpp.o" "gcc" "tests/CMakeFiles/test_profile.dir/test_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/dc_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/dc_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/binfmt/CMakeFiles/dc_binfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
