# Empty dependencies file for test_html_report.
# This may be replaced when dependencies are built.
