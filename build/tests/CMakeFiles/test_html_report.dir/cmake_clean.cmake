file(REMOVE_RECURSE
  "CMakeFiles/test_html_report.dir/test_html_report.cpp.o"
  "CMakeFiles/test_html_report.dir/test_html_report.cpp.o.d"
  "test_html_report"
  "test_html_report.pdb"
  "test_html_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_html_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
