file(REMOVE_RECURSE
  "CMakeFiles/test_derived.dir/test_derived.cpp.o"
  "CMakeFiles/test_derived.dir/test_derived.cpp.o.d"
  "test_derived"
  "test_derived.pdb"
  "test_derived[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_derived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
