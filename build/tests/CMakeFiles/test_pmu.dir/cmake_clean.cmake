file(REMOVE_RECURSE
  "CMakeFiles/test_pmu.dir/test_pmu.cpp.o"
  "CMakeFiles/test_pmu.dir/test_pmu.cpp.o.d"
  "test_pmu"
  "test_pmu.pdb"
  "test_pmu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
