file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_tracker.dir/test_alloc_tracker.cpp.o"
  "CMakeFiles/test_alloc_tracker.dir/test_alloc_tracker.cpp.o.d"
  "test_alloc_tracker"
  "test_alloc_tracker.pdb"
  "test_alloc_tracker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
