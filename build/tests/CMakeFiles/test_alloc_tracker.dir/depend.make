# Empty dependencies file for test_alloc_tracker.
# This may be replaced when dependencies are built.
