# Empty compiler generated dependencies file for test_merge_views.
# This may be replaced when dependencies are built.
