file(REMOVE_RECURSE
  "CMakeFiles/test_merge_views.dir/test_merge_views.cpp.o"
  "CMakeFiles/test_merge_views.dir/test_merge_views.cpp.o.d"
  "test_merge_views"
  "test_merge_views.pdb"
  "test_merge_views[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
