# Empty dependencies file for test_var_map.
# This may be replaced when dependencies are built.
