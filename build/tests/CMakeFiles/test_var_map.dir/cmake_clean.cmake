file(REMOVE_RECURSE
  "CMakeFiles/test_var_map.dir/test_var_map.cpp.o"
  "CMakeFiles/test_var_map.dir/test_var_map.cpp.o.d"
  "test_var_map"
  "test_var_map.pdb"
  "test_var_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_var_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
