file(REMOVE_RECURSE
  "CMakeFiles/test_numa_topology.dir/test_numa_topology.cpp.o"
  "CMakeFiles/test_numa_topology.dir/test_numa_topology.cpp.o.d"
  "test_numa_topology"
  "test_numa_topology.pdb"
  "test_numa_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numa_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
