// Hybrid MPI+OpenMP profiling: each rank runs its own profiler against
// its own machine; per-rank profiles are serialized (the measurement ->
// analysis handoff) and then reduced across ranks exactly as
// HPCToolkit's MPI-based post-mortem analyzer does.

#include <cstdio>
#include <mutex>
#include <sstream>

#include "analysis/merge.h"
#include "analysis/report.h"
#include "analysis/views.h"
#include "rt/cluster.h"
#include "workloads/amg.h"

using namespace dcprof;

int main() {
  constexpr int kRanks = 2;
  constexpr int kThreadsPerRank = 16;

  rt::Cluster cluster(kRanks, wl::node_config(), kThreadsPerRank);
  std::vector<std::string> serialized(kRanks);
  std::vector<std::uint64_t> rank_samples(kRanks, 0);
  std::mutex mu;

  cluster.run([&](rt::Rank& rank) {
    wl::ProcessCtx proc(rank, "amg2006");
    proc.enable_profiling(wl::rmem_config(128), {}, rank.id());
    wl::AmgParams prm;
    prm.rows = 50'000;
    wl::Amg amg(proc, prm, &rank);
    amg.run();

    // Each rank writes its merged per-process profile to "disk".
    core::ThreadProfile profile = proc.merged_profile();
    std::ostringstream out;
    profile.write(out);
    std::lock_guard lock(mu);
    rank_samples[static_cast<std::size_t>(rank.id())] =
        profile.total_samples();
    serialized[static_cast<std::size_t>(rank.id())] = out.str();
  });

  // Post-mortem: load every rank's profile and reduce.
  std::vector<core::ThreadProfile> profiles;
  std::uint64_t bytes = 0;
  for (const auto& blob : serialized) {
    bytes += blob.size();
    std::istringstream in(blob);
    profiles.push_back(core::ThreadProfile::read(in));
  }
  core::ThreadProfile global = analysis::reduce(std::move(profiles));

  std::printf("== hybrid MPI+OpenMP profiling ==\n\n");
  for (int r = 0; r < kRanks; ++r) {
    std::printf("rank %d: %s samples\n", r,
                analysis::format_count(rank_samples[r]).c_str());
  }
  std::printf("serialized profiles: %s bytes total\n",
              analysis::format_count(bytes).c_str());
  std::printf("global profile: %s samples (rank field = %d)\n\n",
              analysis::format_count(global.total_samples()).c_str(),
              global.rank);

  // The global data-centric view. For label resolution, rebuild the code
  // structure in a scratch process (every rank lays its module out at
  // identical addresses, so IPs align across ranks).
  wl::ProcessCtx labels(wl::node_config(), 1, "amg2006");
  wl::AmgParams prm;
  prm.rows = 50'000;
  wl::Amg structure(labels, prm);
  const auto vars = analysis::variable_table(global, labels.actx(),
                                             core::Metric::kRemoteDram);
  std::printf("%s\n",
              analysis::render_variables(vars, analysis::summarize(global),
                                         core::Metric::kRemoteDram, 8)
                  .c_str());
  return 0;
}
