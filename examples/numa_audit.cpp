// NUMA audit workflow: run a workload under marked-event sampling,
// identify the variables drawing remote traffic, apply the placement fix
// the data suggests, and verify the speedup — the Streamcluster story
// from the paper's Section 5.4, end to end.

#include <cstdio>

#include "analysis/advisor.h"
#include "analysis/report.h"
#include "analysis/views.h"
#include "workloads/streamcluster.h"

using namespace dcprof;

int main() {
  // Step 1: measure with PM_MRK_DATA_FROM_RMEM-style sampling.
  wl::StreamclusterParams prm;
  prm.npoints = 40'000;
  prm.dim = 24;
  prm.iters = 3;
  wl::ProcessCtx proc(wl::node_config(), 16, "streamcluster");
  wl::Streamcluster sc(proc, prm);
  proc.enable_profiling(wl::rmem_config(64));
  const wl::RunResult before = sc.run();

  core::ThreadProfile merged = proc.merged_profile();
  const analysis::AnalysisContext actx = proc.actx();
  const analysis::ClassSummary summary = analysis::summarize(merged);

  std::printf("== NUMA audit ==\n\n");
  std::printf("remote accesses on heap data: %s\n\n",
              analysis::format_percent(
                  summary.fraction(core::StorageClass::kHeap,
                                   core::Metric::kRemoteDram))
                  .c_str());

  // Step 2: the data-centric view names the culprits.
  const auto vars =
      analysis::variable_table(merged, actx, core::Metric::kRemoteDram);
  std::printf("%s\n",
              analysis::render_variables(vars, summary,
                                         core::Metric::kRemoteDram, 6)
                  .c_str());

  // Step 3: the bottom-up view points at the allocation to fix, and the
  // advisor spells out the recommendation.
  const auto sites =
      analysis::bottom_up_alloc_sites(merged, actx,
                                      core::Metric::kRemoteDram);
  if (!sites.empty()) {
    std::printf("fix the allocation at: %s  [%s]\n\n",
                sites[0].site.c_str(), sites[0].name.c_str());
  }
  std::printf("guidance:\n%s\n",
              analysis::render_advice(analysis::advise(merged, actx))
                  .c_str());

  // Step 4: apply the fix (malloc + parallel first-touch init) and verify.
  wl::StreamclusterParams fixed_prm = prm;
  fixed_prm.parallel_first_touch = true;
  wl::ProcessCtx proc2(wl::node_config(), 16, "streamcluster");
  wl::Streamcluster fixed(proc2, fixed_prm);
  const wl::RunResult after = fixed.run();

  if (after.checksum != before.checksum) {
    std::fprintf(stderr, "fix changed the results!\n");
    return 1;
  }
  const double gain = (static_cast<double>(before.sim_cycles) -
                       static_cast<double>(after.sim_cycles)) /
                      static_cast<double>(before.sim_cycles);
  std::printf("before: %s cycles\nafter:  %s cycles\nspeedup: %s "
              "(results identical)\n",
              analysis::format_count(before.sim_cycles).c_str(),
              analysis::format_count(after.sim_cycles).c_str(),
              analysis::format_percent(gain).c_str());
  return 0;
}
