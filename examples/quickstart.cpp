// Quickstart: profile a small parallel kernel and render the
// data-centric views.
//
// The kernel mirrors the paper's motivating example: a master thread
// callocs two arrays (placing every page on its own NUMA node), then a
// team of worker threads streams one array and gathers through the other.
// The profiler attributes remote-access and latency metrics to the
// *variables*, not just the code, so the culprit array is obvious.

#include <cstdio>

#include "analysis/report.h"
#include "analysis/views.h"
#include "rt/sim_array.h"
#include "workloads/harness.h"

using namespace dcprof;

int main() {
  // A 4-socket machine with 4 cores per socket and one thread per core.
  wl::ProcessCtx proc(wl::node_config(), /*threads=*/16, "quickstart");

  // Describe the "source code" so the profiler can resolve IPs.
  binfmt::LoadModule& exe = proc.exe();
  const auto f_main = exe.add_function("main", "quickstart.cpp");
  const sim::Addr ip_alloc_a = exe.add_instr(f_main, 10);
  const sim::Addr ip_alloc_b = exe.add_instr(f_main, 11);
  const sim::Addr ip_kernel = exe.add_instr(f_main, 20);
  const auto f_kernel = exe.add_function("kernel$$OL$$1", "quickstart.cpp");
  const sim::Addr ip_load_a = exe.add_instr(f_kernel, 31);
  const sim::Addr ip_load_b = exe.add_instr(f_kernel, 32);
  const sim::Addr ip_store_a = exe.add_instr(f_kernel, 33);
  proc.annotate(ip_alloc_a, "A");
  proc.annotate(ip_alloc_b, "B");

  // Turn on measurement: sample every 256th retired op, IBS style.
  proc.enable_profiling(wl::ibs_config(/*period=*/256));

  constexpr std::int64_t kN = 200'000;
  constexpr std::int64_t kM = 4 * kN;  // B exceeds every socket's L3
  rt::Team& team = proc.team();

  // Master allocates and zeroes both arrays (the NUMA mistake).
  rt::SimArray<double> a, b;
  team.single([&](rt::ThreadCtx& t) {
    {
      rt::Scope s(t, ip_alloc_a);
      a = rt::SimArray<double>::calloc_in(proc.alloc(), t, kN, ip_alloc_a);
    }
    {
      rt::Scope s(t, ip_alloc_b);
      b = rt::SimArray<double>::calloc_in(proc.alloc(), t, kM, ip_alloc_b);
    }
  });

  // Workers stream A and gather through B.
  rt::TeamScope region(team, ip_kernel);
  team.parallel_for(0, kN, [&](rt::ThreadCtx& t, std::int64_t i) {
    const auto u = static_cast<std::uint64_t>(i);
    const double av = a.get(t, u, ip_load_a);
    const auto g = static_cast<std::uint64_t>((i * 97) % kM);
    const double bv = b.get(t, g, ip_load_b);
    a.set(t, u, av + 0.5 * bv, ip_store_a);
  });

  // Post-mortem: merge the 16 per-thread profiles and render views.
  core::ThreadProfile merged = proc.merged_profile();
  const analysis::AnalysisContext actx = proc.actx();

  const analysis::ClassSummary summary = analysis::summarize(merged);
  std::printf("heap share of remote accesses: %s\n",
              analysis::format_percent(
                  summary.fraction(core::StorageClass::kHeap,
                                   core::Metric::kRemoteDram))
                  .c_str());

  const auto vars = analysis::variable_table(merged, actx,
                                             core::Metric::kRemoteDram);
  std::printf("\n%s\n",
              analysis::render_variables(vars, summary,
                                         core::Metric::kRemoteDram)
                  .c_str());

  std::printf("%s\n",
              analysis::render_top_down(merged, core::StorageClass::kHeap,
                                        actx)
                  .c_str());
  return 0;
}
