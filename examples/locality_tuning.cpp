// Spatial-locality tuning workflow: IBS latency sampling exposes a
// strided traversal (high latency + TLB misses on one access site);
// transposing the array layout fixes it — the Sweep3D story from the
// paper's Section 5.2, end to end.

#include <cstdio>

#include "analysis/report.h"
#include "analysis/views.h"
#include "workloads/harness.h"
#include "workloads/sweep3d.h"

using namespace dcprof;

int main() {
  wl::Sweep3dParams prm;
  prm.ranks = 4;
  prm.nx = 16;
  prm.ny = 32;
  prm.nz = 32;

  // Step 1: profile the original layout with IBS.
  const auto before =
      wl::run_sweep3d_cluster(prm, /*profiled=*/true, wl::ibs_config(512));
  wl::ProcessCtx labels(wl::rank_config(), 1, "sweep3d");
  wl::Sweep3dRank structure(labels, prm, nullptr);
  const analysis::AnalysisContext actx = labels.actx();

  std::printf("== locality tuning ==\n\n");
  const auto accesses = analysis::access_table(
      *before.profile, core::StorageClass::kHeap, actx,
      core::Metric::kLatency);
  const auto summary = analysis::summarize(*before.profile);
  const auto grand = summary.grand[core::Metric::kLatency];

  analysis::Table t({"variable", "access", "latency share", "TLB misses"});
  for (std::size_t i = 0; i < accesses.size() && i < 5; ++i) {
    t.add_row({accesses[i].variable, accesses[i].site,
               analysis::format_percent(
                   grand > 0
                       ? static_cast<double>(
                             accesses[i].metrics[core::Metric::kLatency]) /
                             static_cast<double>(grand)
                       : 0),
               analysis::format_count(
                   accesses[i].metrics[core::Metric::kTlbMiss])});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("diagnosis: the hot accesses walk the arrays with the "
              "rightmost index innermost — a long column-major stride "
              "(note the TLB misses).\n\n");

  // Step 2: apply the layout transposition and verify.
  wl::Sweep3dParams fixed_prm = prm;
  fixed_prm.transposed = true;
  const auto after = wl::run_sweep3d_cluster(fixed_prm, /*profiled=*/false);
  const auto base = wl::run_sweep3d_cluster(prm, /*profiled=*/false);

  if (after.checksum != base.checksum) {
    std::fprintf(stderr, "transpose changed the results!\n");
    return 1;
  }
  const double gain = (static_cast<double>(base.sim_cycles) -
                       static_cast<double>(after.sim_cycles)) /
                      static_cast<double>(base.sim_cycles);
  std::printf("original:   %s cycles\ntransposed: %s cycles\n"
              "speedup:    %s (results identical)\n",
              analysis::format_count(base.sim_cycles).c_str(),
              analysis::format_count(after.sim_cycles).c_str(),
              analysis::format_percent(gain).c_str());
  return 0;
}
